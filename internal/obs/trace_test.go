package obs

import (
	"testing"
	"time"
)

func TestTracerRingWindow(t *testing.T) {
	tr := NewTracer(16, 4)
	for i := 1; i <= 40; i++ {
		tr.Record(time.Duration(i)*time.Microsecond, EvAdmit, 0, uint64(i), 0, 0)
	}
	evs := tr.Events()
	if len(evs) != 16 {
		t.Fatalf("window = %d events, want 16", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(25 + i)
		if e.Seq != wantSeq {
			t.Fatalf("event %d: seq = %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Rule != wantSeq {
			t.Fatalf("event %d: rule = %d, want %d", i, e.Rule, wantSeq)
		}
	}
	if tr.Len() != 40 {
		t.Fatalf("Len = %d, want 40", tr.Len())
	}
}

func TestTracerPartialWindow(t *testing.T) {
	tr := NewTracer(64, 4)
	tr.Record(time.Millisecond, EvBypass, 0, 7, 0, 0)
	tr.Record(2*time.Millisecond, EvViolation, 0, 7, 0, 99)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("window = %d events, want 2", len(evs))
	}
	if evs[0].Kind != EvBypass || evs[1].Kind != EvViolation {
		t.Fatalf("wrong kinds: %v %v", evs[0].Kind, evs[1].Kind)
	}
	if evs[1].B != 99 {
		t.Fatalf("violation latency datum = %d, want 99", evs[1].B)
	}
}

func TestTracerCaptures(t *testing.T) {
	tr := NewTracer(16, 4)
	for i := 1; i <= 10; i++ {
		tr.Record(time.Duration(i), EvMainInsert, 0, uint64(i), 0, 0)
	}
	tr.CaptureNow(10, "violation rule=10")
	for i := 11; i <= 20; i++ {
		tr.Record(time.Duration(i), EvMainInsert, 0, uint64(i), 0, 0)
	}
	tr.CaptureNow(20, "reconcile repaired=3")

	caps, dropped := tr.Captures()
	if len(caps) != 2 || dropped != 0 {
		t.Fatalf("captures = %d (dropped %d), want 2 (0)", len(caps), dropped)
	}
	if caps[0].Reason != "violation rule=10" || caps[0].Seq != 10 {
		t.Fatalf("capture 0 = %+v", caps[0])
	}
	if len(caps[0].Events) != 10 {
		t.Fatalf("capture 0 holds %d events, want 10", len(caps[0].Events))
	}
	// First capture is immutable: later records must not leak into it.
	if last := caps[0].Events[len(caps[0].Events)-1]; last.Rule != 10 {
		t.Fatalf("capture 0 last rule = %d, want 10", last.Rule)
	}
	if len(caps[1].Events) != 16 {
		t.Fatalf("capture 1 holds %d events, want full 16-event window", len(caps[1].Events))
	}

	// Retention cap: oldest captures survive, extras count as dropped.
	for i := 0; i < 10; i++ {
		tr.CaptureNow(time.Duration(30+i), "overflow")
	}
	caps, dropped = tr.Captures()
	if len(caps) != 4 {
		t.Fatalf("retained %d captures, want cap of 4", len(caps))
	}
	if dropped != 8 {
		t.Fatalf("dropped = %d, want 8", dropped)
	}
	if caps[0].Reason != "violation rule=10" {
		t.Fatal("oldest capture was evicted; first-trigger retention violated")
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(0, EvAdmit, 0, 1, 2, 3) // must not panic
	tr.CaptureNow(0, "x")
	if tr.Len() != 0 {
		t.Fatal("nil tracer Len != 0")
	}
	if evs := tr.Events(); evs != nil {
		t.Fatal("nil tracer Events != nil")
	}
	if caps, dropped := tr.Captures(); caps != nil || dropped != 0 {
		t.Fatal("nil tracer Captures not empty")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{
		EvAdmit, EvBypass, EvDivertRate, EvDivertSize, EvDivertFull,
		EvRedundant, EvMainInsert, EvDelete, EvModify, EvViolation,
		EvMigStep, EvMigDone, EvMigAbort, EvMigInterrupt, EvReconcile, EvCrash,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Fatalf("kind %d has bad/duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if EventKind(200).String() != "unknown" {
		t.Fatal("out-of-range kind must stringify as unknown")
	}
}
