package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE headers, then one
// sample line per series. Histograms emit only their non-empty cumulative
// buckets plus the mandatory +Inf bucket, _sum and _count; nanosecond
// histograms ("ns" unit) render bucket bounds and sums in seconds, the
// Prometheus convention for time.
func WritePrometheus(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	lastHeader := ""
	for _, m := range r.gather() {
		if m.name != lastHeader {
			if m.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, typeOf(m.kind))
			lastHeader = m.name
		}
		switch m.kind {
		case kindCounter:
			writeSample(bw, m.name, m.labels, "", formatUint(m.counter.Value()))
		case kindCounterFunc:
			writeSample(bw, m.name, m.labels, "", formatUint(m.cfn()))
		case kindGauge:
			writeSample(bw, m.name, m.labels, "", strconv.FormatInt(m.gauge.Value(), 10))
		case kindGaugeFunc:
			writeSample(bw, m.name, m.labels, "", formatFloat(m.gfn()))
		case kindHistogram:
			writeHistogram(bw, m)
		}
	}
	return bw.Flush()
}

func typeOf(k metricKind) string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeSample emits name{labels,extra} value. extra is a pre-rendered
// additional label (the histogram `le`), appended after m's own labels.
func writeSample(w io.Writer, name, labels, extra, value string) {
	body := labels
	if extra != "" {
		if body != "" {
			body += ","
		}
		body += extra
	}
	if body != "" {
		fmt.Fprintf(w, "%s{%s} %s\n", name, body, value)
	} else {
		fmt.Fprintf(w, "%s %s\n", name, value)
	}
}

func writeHistogram(w io.Writer, m *metric) {
	scale := 1.0
	if m.unit == "ns" {
		scale = 1e-9
	}
	buckets := m.hist.SnapshotBuckets()
	count := m.hist.Count()
	for _, b := range buckets {
		le := `le="` + formatFloat(float64(b.UpperBound)*scale) + `"`
		writeSample(w, m.name+"_bucket", m.labels, le, formatUint(b.CumCount))
	}
	writeSample(w, m.name+"_bucket", m.labels, `le="+Inf"`, formatUint(count))
	writeSample(w, m.name+"_sum", m.labels, "", formatFloat(float64(m.hist.Sum())*scale))
	writeSample(w, m.name+"_count", m.labels, "", formatUint(count))
}

// jsonMetric is the /debug/vars JSON shape for one series.
type jsonMetric struct {
	Name   string            `json:"name"`
	Labels string            `json:"labels,omitempty"`
	Type   string            `json:"type"`
	Value  *float64          `json:"value,omitempty"`
	Hist   *jsonHistSnapshot `json:"histogram,omitempty"`
}

type jsonHistSnapshot struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Min   uint64  `json:"min"`
	Max   uint64  `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// WriteJSON renders a machine-readable snapshot of the registry: counters
// and gauges as scalars, histograms as count/sum/min/max/mean plus the
// quantiles the paper's evaluation plots (p50/p90/p99/p99.9).
func WriteJSON(w io.Writer, r *Registry) error {
	var out []jsonMetric
	for _, m := range r.gather() {
		jm := jsonMetric{Name: m.name, Labels: m.labels, Type: typeOf(m.kind)}
		switch m.kind {
		case kindCounter:
			v := float64(m.counter.Value())
			jm.Value = &v
		case kindCounterFunc:
			v := float64(m.cfn())
			jm.Value = &v
		case kindGauge:
			v := float64(m.gauge.Value())
			jm.Value = &v
		case kindGaugeFunc:
			v := m.gfn()
			jm.Value = &v
		case kindHistogram:
			h := m.hist
			jm.Hist = &jsonHistSnapshot{
				Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
				Mean: h.Mean(),
				P50:  h.Quantile(0.50), P90: h.Quantile(0.90),
				P99: h.Quantile(0.99), P999: h.Quantile(0.999),
			}
		}
		out = append(out, jm)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// jsonCapture mirrors Capture with stringified kinds for readability.
type jsonCapture struct {
	Seq    uint64      `json:"seq"`
	AtNS   int64       `json:"at_ns"`
	Reason string      `json:"reason"`
	Events []jsonEvent `json:"events"`
}

type jsonEvent struct {
	Seq  uint64 `json:"seq"`
	AtNS int64  `json:"at_ns"`
	Kind string `json:"kind"`
	Step uint8  `json:"step,omitempty"`
	Rule uint64 `json:"rule,omitempty"`
	A    uint64 `json:"a,omitempty"`
	B    uint64 `json:"b,omitempty"`
}

func toJSONEvents(evs []Event) []jsonEvent {
	out := make([]jsonEvent, len(evs))
	for i, e := range evs {
		out[i] = jsonEvent{
			Seq: e.Seq, AtNS: int64(e.At), Kind: e.Kind.String(),
			Step: e.Step, Rule: e.Rule, A: e.A, B: e.B,
		}
	}
	return out
}

// WriteTraceJSON renders the tracer's live window and retained captures.
func WriteTraceJSON(w io.Writer, t *Tracer) error {
	caps, dropped := t.Captures()
	jcaps := make([]jsonCapture, len(caps))
	for i, c := range caps {
		jcaps[i] = jsonCapture{
			Seq: c.Seq, AtNS: int64(c.At), Reason: c.Reason,
			Events: toJSONEvents(c.Events),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Recorded        uint64        `json:"recorded"`
		Window          []jsonEvent   `json:"window"`
		Captures        []jsonCapture `json:"captures"`
		CapturesDropped uint64        `json:"captures_dropped"`
	}{t.Len(), toJSONEvents(t.Events()), jcaps, dropped})
}

// NewMux builds the observability HTTP handler: /metrics (Prometheus
// text), /debug/vars (JSON snapshot), /debug/trace (flight recorder,
// when a tracer is supplied), and the standard /debug/pprof endpoints.
func NewMux(r *Registry, t *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteJSON(w, r)
	})
	if t != nil {
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = WriteTraceJSON(w, t)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
