package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"hermes/internal/stats"
)

// TestBucketRoundTrip checks the index↔bound mapping is consistent over
// the whole 64-bit range: every value lands in a bucket whose [low, high]
// range contains it, and bucket bounds tile the range without gaps.
func TestBucketRoundTrip(t *testing.T) {
	probe := func(v uint64) {
		i := bucketIndex(v)
		if i < 0 || i >= histNumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if lo, hi := bucketLow(i), bucketHigh(i); v < lo || v > hi {
			t.Fatalf("value %d maps to bucket %d [%d,%d]", v, i, lo, hi)
		}
	}
	for v := uint64(0); v < 4096; v++ {
		probe(v)
	}
	for shift := 0; shift < 64; shift++ {
		v := uint64(1) << shift
		probe(v)
		probe(v - 1)
		probe(v + 1)
	}
	probe(math.MaxUint64)

	// Buckets tile: each bucket starts where the previous one ended.
	for i := 1; i < histNumBuckets; i++ {
		if bucketLow(i) != bucketHigh(i-1)+1 {
			t.Fatalf("gap between buckets %d and %d: high=%d low=%d",
				i-1, i, bucketHigh(i-1), bucketLow(i))
		}
	}

	// Relative bucket width stays within the design bound of 1/32.
	for i := histSubBuckets; i < histNumBuckets; i++ {
		lo, hi := bucketLow(i), bucketHigh(i)
		if width := float64(hi-lo) / float64(lo); width > 1.0/histSubBuckets+1e-12 {
			t.Fatalf("bucket %d width %g exceeds design bound", i, width)
		}
	}
}

// quantileOracleCheck records samples into a histogram and into a
// stats.Summary, then compares quantiles under a relative-error bound of
// 5% (design error is ~3.1% from bucket width; headroom covers the
// differing intra-bucket interpolation conventions).
func quantileOracleCheck(t *testing.T, name string, samples []uint64) {
	t.Helper()
	h := NewHistogram()
	fs := make([]float64, len(samples))
	for i, v := range samples {
		h.Record(v)
		fs[i] = float64(v)
	}
	sum := stats.Summarize(fs)
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1} {
		want := sum.Quantile(q)
		got := h.Quantile(q)
		tol := 0.05*math.Abs(want) + 1.5 // absolute slack for tiny values
		if math.Abs(got-want) > tol {
			t.Errorf("%s: q=%v: hist=%g oracle=%g (tol %g)", name, q, got, want, tol)
		}
	}
	if h.Count() != uint64(len(samples)) {
		t.Errorf("%s: count = %d, want %d", name, h.Count(), len(samples))
	}
	if got, want := h.Min(), uint64(sum.Min()); got != want {
		t.Errorf("%s: min = %d, want %d", name, got, want)
	}
	if got, want := h.Max(), uint64(sum.Max()); got != want {
		t.Errorf("%s: max = %d, want %d", name, got, want)
	}
}

func TestQuantileVsOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	t.Run("uniform", func(t *testing.T) {
		s := make([]uint64, 10000)
		for i := range s {
			s[i] = uint64(rng.Int63n(1_000_000))
		}
		quantileOracleCheck(t, "uniform", s)
	})
	t.Run("lognormal", func(t *testing.T) {
		// Latency-shaped: heavy right tail like the paper's Fig. 1.
		s := make([]uint64, 10000)
		for i := range s {
			s[i] = uint64(math.Exp(rng.NormFloat64()*2 + 10))
		}
		quantileOracleCheck(t, "lognormal", s)
	})
	t.Run("exponential", func(t *testing.T) {
		s := make([]uint64, 10000)
		for i := range s {
			s[i] = uint64(rng.ExpFloat64() * 50_000)
		}
		quantileOracleCheck(t, "exponential", s)
	})
}

func TestQuantileVsOracleAdversarial(t *testing.T) {
	t.Run("constant", func(t *testing.T) {
		s := make([]uint64, 1000)
		for i := range s {
			s[i] = 77777
		}
		quantileOracleCheck(t, "constant", s)
	})
	t.Run("two-point-bimodal", func(t *testing.T) {
		// All mass at two distant points: quantiles must snap to one of
		// them, not smear across the empty region (except exactly at the
		// jump quantile, where both conventions interpolate).
		s := make([]uint64, 0, 1000)
		for i := 0; i < 900; i++ {
			s = append(s, 100)
		}
		for i := 0; i < 100; i++ {
			s = append(s, 1_000_000)
		}
		h := NewHistogram()
		for _, v := range s {
			h.Record(v)
		}
		if got := h.Quantile(0.5); math.Abs(got-100) > 5 {
			t.Errorf("bimodal p50 = %g, want ≈100", got)
		}
		if got := h.Quantile(0.95); math.Abs(got-1_000_000) > 0.05*1_000_000 {
			t.Errorf("bimodal p95 = %g, want ≈1e6", got)
		}
	})
	t.Run("single-sample", func(t *testing.T) {
		quantileOracleCheck(t, "single", []uint64{123456})
	})
	t.Run("powers-of-two", func(t *testing.T) {
		// Every value on a bucket boundary.
		var s []uint64
		for i := 0; i < 40; i++ {
			s = append(s, uint64(1)<<i)
		}
		quantileOracleCheck(t, "pow2", s)
	})
	t.Run("small-exact-region", func(t *testing.T) {
		// Values < 32 are exact; oracle and histogram must agree tightly.
		s := make([]uint64, 0, 320)
		for v := uint64(0); v < 32; v++ {
			for k := 0; k < 10; k++ {
				s = append(s, v)
			}
		}
		quantileOracleCheck(t, "exact", s)
	})
	t.Run("zipf-tail", func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		z := rand.NewZipf(rng, 1.2, 1, 1<<40)
		s := make([]uint64, 5000)
		for i := range s {
			s[i] = z.Uint64()
		}
		quantileOracleCheck(t, "zipf", s)
	})
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram scalar accessors must all be zero")
	}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram statistics must be zero")
	}
	if bs := h.SnapshotBuckets(); len(bs) != 0 {
		t.Fatalf("empty histogram has %d snapshot buckets", len(bs))
	}
}

func TestHistogramMergeCloneReset(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for v := uint64(1); v <= 100; v++ {
		a.Record(v * 10)
		b.Record(v * 1000)
	}
	m := a.Clone()
	m.Merge(b)
	if m.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", m.Count())
	}
	if m.Sum() != a.Sum()+b.Sum() {
		t.Fatalf("merged sum = %d, want %d", m.Sum(), a.Sum()+b.Sum())
	}
	if m.Min() != a.Min() || m.Max() != b.Max() {
		t.Fatalf("merged min/max = %d/%d, want %d/%d", m.Min(), m.Max(), a.Min(), b.Max())
	}
	// Clone is independent of its source.
	a.Record(5)
	if m.Count() != 200 {
		t.Fatal("clone shares state with source")
	}
	m.Reset()
	if m.Count() != 0 || m.Quantile(0.9) != 0 {
		t.Fatal("reset did not clear histogram")
	}
	m.Record(9)
	if m.Min() != 9 || m.Max() != 9 {
		t.Fatalf("post-reset min/max = %d/%d, want 9/9", m.Min(), m.Max())
	}
}

// TestConcurrentRecordSnapshot hammers one histogram, one counter and one
// gauge from many goroutines while a reader snapshots continuously. Run
// under -race this is the data-race proof; the final totals prove no
// updates were lost.
func TestConcurrentRecordSnapshot(t *testing.T) {
	const (
		workers = 8
		perG    = 20000
	)
	h := NewHistogram()
	var c Counter
	var g Gauge
	stop := make(chan struct{})

	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = h.Quantile(0.99)
			_ = h.SnapshotBuckets()
			_ = h.Clone()
			_ = c.Value()
			_ = g.Value()
		}
	}()

	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				h.Record(uint64(rng.Int63n(1 << 30)))
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}(int64(w))
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if got := h.Count(); got != workers*perG {
		t.Fatalf("histogram count = %d, want %d", got, workers*perG)
	}
	if got := c.Value(); got != workers*perG {
		t.Fatalf("counter = %d, want %d", got, workers*perG)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i) * 31)
	}
}

func BenchmarkHistogramRecordParallel(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := uint64(0)
		for pb.Next() {
			v += 1023
			h.Record(v)
		}
	})
}

func BenchmarkCounterAddParallel(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkTracerRecord(b *testing.B) {
	tr := NewTracer(1024, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(0, EvAdmit, 0, uint64(i), 1, 2)
	}
}
