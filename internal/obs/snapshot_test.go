package obs

import (
	"math/rand"
	"sync"
	"testing"
)

func TestSnapshotMatchesLive(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		h.Record(uint64(rng.Int63n(1 << 22)))
	}
	s := h.Snapshot()
	if s.Count() != h.Count() || s.Sum() != h.Sum() || s.Min() != h.Min() || s.Max() != h.Max() {
		t.Fatalf("snapshot scalars diverge: %d/%d/%d/%d vs %d/%d/%d/%d",
			s.Count(), s.Sum(), s.Min(), s.Max(), h.Count(), h.Sum(), h.Min(), h.Max())
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if got, want := s.Quantile(q), h.Quantile(q); got != want {
			t.Fatalf("q=%v: snapshot %g != live %g", q, got, want)
		}
	}
	// Snapshot is frozen: further records must not leak in.
	h.Record(1)
	if s.Count() == h.Count() {
		t.Fatal("snapshot shares state with the live histogram")
	}
}

func TestSnapshotEmptyAndSingleBucketMerges(t *testing.T) {
	empty := NewHistogram().Snapshot()
	if empty.Count() != 0 || empty.Min() != 0 || empty.Max() != 0 || empty.Quantile(0.99) != 0 {
		t.Fatal("empty snapshot statistics must be zero")
	}

	// empty ⊕ empty stays empty.
	e2 := empty.Clone()
	e2.Merge(NewHistogram().Snapshot())
	if e2.Count() != 0 || e2.Quantile(0.5) != 0 {
		t.Fatal("merging two empty snapshots is not empty")
	}

	// Single-bucket source merged into empty: extremes and quantiles exact.
	h := NewHistogram()
	h.Record(777)
	single := h.Snapshot()
	m := NewHistogram().Snapshot()
	m.Merge(single)
	if m.Count() != 1 || m.Min() != 777 || m.Max() != 777 {
		t.Fatalf("empty+single merge: count=%d min=%d max=%d", m.Count(), m.Min(), m.Max())
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := m.Quantile(q); got != 777 {
			t.Fatalf("single-value q=%v = %g, want 777", q, got)
		}
	}

	// Merging an empty snapshot into a populated one must not clobber the
	// extremes (the sentinel-handling edge case).
	m.Merge(empty)
	if m.Min() != 777 || m.Max() != 777 || m.Count() != 1 {
		t.Fatalf("populated+empty merge corrupted extremes: min=%d max=%d", m.Min(), m.Max())
	}

	// Two single-bucket snapshots in distant buckets.
	h2 := NewHistogram()
	h2.Record(1_000_000)
	m.Merge(h2.Snapshot())
	if m.Count() != 2 || m.Min() != 777 || m.Max() != 1_000_000 {
		t.Fatalf("distant merge: count=%d min=%d max=%d", m.Count(), m.Min(), m.Max())
	}
	if got := m.Quantile(1); got != 1_000_000 {
		t.Fatalf("merged q=1 = %g, want exactly 1000000", got)
	}
	if got := m.Quantile(0); got != 777 {
		t.Fatalf("merged q=0 = %g, want exactly 777", got)
	}
}

func TestQuantileClampedToObservedRange(t *testing.T) {
	// Bucket interpolation used to report values outside [min, max] for
	// sparse histograms (e.g. q=1 landing at the bucket's low bound, below
	// the true maximum). The extremes are exact; quantiles must respect
	// them.
	h := NewHistogram()
	h.Record(10)
	h.Record(1000)
	if got := h.Quantile(1); got != 1000 {
		t.Fatalf("q=1 = %g, want exactly 1000", got)
	}
	if got := h.Quantile(0); got != 10 {
		t.Fatalf("q=0 = %g, want exactly 10", got)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.999} {
		got := h.Quantile(q)
		if got < 10 || got > 1000 {
			t.Fatalf("q=%v = %g outside observed range [10,1000]", q, got)
		}
	}
}

func TestSnapshotSubInterval(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Record(100) // first batch: all at 100
	}
	before := h.Snapshot()

	// Identity: diffing a snapshot against itself is empty.
	if d := before.Sub(before); d.Count() != 0 || d.Quantile(0.99) != 0 {
		t.Fatal("self-diff is not empty")
	}
	// Nil baseline: the diff is the whole snapshot.
	if d := before.Sub(nil); d.Count() != 100 || d.Min() != 100 || d.Max() != 100 {
		t.Fatal("nil-baseline diff lost data")
	}

	for i := 0; i < 300; i++ {
		h.Record(1_000_000) // second batch: all at 1e6
	}
	after := h.Snapshot()
	d := after.Sub(before)
	if d.Count() != 300 {
		t.Fatalf("interval count = %d, want 300", d.Count())
	}
	// The interval holds only second-batch samples: its p50 must sit at
	// the 1e6 bucket, not at 100, and extremes must stay within bucket
	// precision of 1e6.
	if got := d.Quantile(0.5); got < 950_000 || got > 1_050_000 {
		t.Fatalf("interval p50 = %g, want ≈1e6", got)
	}
	if d.Min() <= 100 {
		t.Fatalf("interval min = %d leaked the first batch", d.Min())
	}
	if d.Max() > after.Max() {
		t.Fatalf("interval max %d exceeds overall max %d", d.Max(), after.Max())
	}
	if d.Sum() != after.Sum()-before.Sum() {
		t.Fatalf("interval sum = %d, want %d", d.Sum(), after.Sum()-before.Sum())
	}

	// Per-worker aggregation pattern: diffs from two sources merge into
	// one distribution with conserved counts.
	other := NewHistogram()
	other.Record(500)
	agg := other.Snapshot().Sub(nil)
	agg.Merge(d)
	if agg.Count() != 301 || agg.Min() != 500 || agg.Max() != d.Max() {
		t.Fatalf("aggregate count=%d min=%d max=%d", agg.Count(), agg.Min(), agg.Max())
	}
}

// TestSnapshotDuringConcurrentRecord proves the snapshot path is safe and
// self-consistent (quantile scans terminate, count == bucket mass) while
// writers hammer the histogram.
func TestSnapshotDuringConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
					h.Record(uint64(rng.Int63n(1 << 28)))
				}
			}
		}(int64(w))
	}
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		var mass uint64
		for b := 0; b < histNumBuckets; b++ {
			mass += s.buckets[b]
		}
		if mass != s.Count() {
			t.Errorf("snapshot count %d != bucket mass %d", s.Count(), mass)
			break
		}
		if s.Count() > 0 {
			if q := s.Quantile(0.99); q < float64(s.Min()) || q > float64(s.Max()) {
				t.Errorf("q=0.99 %g outside [%d,%d]", q, s.Min(), s.Max())
				break
			}
		}
	}
	close(stop)
	wg.Wait()
}
