// Package obs is the always-on observability layer: lock-free counters and
// gauges, fixed-footprint log-linear latency histograms, a bounded flow-mod
// lifecycle tracer with a flight recorder, and exposition over HTTP in
// Prometheus text format and as a JSON snapshot.
//
// The paper's entire argument is about latency tails — guarantees are
// demonstrated by per-insertion latency distributions and violation rates
// (Figs. 1, 13–14) — so the measurement layer must be cheap enough to stay
// on in production and in every benchmark. Every record-path operation
// (Counter.Add, Gauge.Set, Histogram.Record, Tracer.Record) performs zero
// heap allocations; snapshots, captures and exposition pay the allocation
// cost instead, off the hot path.
//
// Clock discipline: obs never reads the wall clock. Events and samples are
// stamped with caller-provided virtual time (time.Duration offsets, exactly
// like internal/sim), so traces recorded under a seeded schedule — chaos
// runs included — replay bit-identically. The package is enforced
// wall-clock-free by the hermes-lint determinism analyzer.
package obs

import "time"

// Clock yields the current virtual time. The agent passes its own notion of
// "now" (simulator time, or wall-offset time in the daemons); obs itself
// never consults a clock so that instrumented runs stay deterministic.
type Clock func() time.Duration
