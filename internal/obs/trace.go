package obs

import (
	"sync"
	"time"
)

// EventKind classifies one step in a flow-mod's lifecycle. The lifecycle
// mirrors the paper: the Gate Keeper admits a guaranteed insert into the
// shadow carve, bypasses lowest-priority rules straight to main (§4.2),
// diverts on token-bucket exhaustion or capacity, and the Rule Manager
// migrates shadow partitions to main through the four Fig.-7 steps.
type EventKind uint8

const (
	EvNone         EventKind = iota
	EvAdmit                  // guaranteed insert admitted to shadow; A=partitions installed, B=latency ns
	EvBypass                 // §4.2 lowest-priority bypass straight to main; B=latency ns
	EvDivertRate             // token-bucket deny → main path; A=whole tokens available at deny time
	EvDivertSize             // rule too wide for shadow carve → main path
	EvDivertFull             // shadow occupancy exhausted → main path
	EvRedundant              // insert dropped: logically covered by installed rules
	EvMainInsert             // best-effort main-TCAM insert; B=latency ns
	EvDelete                 // rule deletion
	EvModify                 // rule modification
	EvViolation              // guarantee deadline exceeded; B=latency ns
	EvMigStep                // one Fig.-7 migration step applied; Step says which, A=rules touched
	EvMigDone                // migration completed; A=rules migrated
	EvMigAbort               // migration aborted before any main-TCAM write
	EvMigInterrupt           // migration interrupted mid-flight; reconcile required
	EvReconcile              // reconcile pass finished; A=stale, B=repaired
	EvCrash                  // switch crash/restart observed
)

var eventKindNames = [...]string{
	EvNone:         "none",
	EvAdmit:        "admit",
	EvBypass:       "bypass",
	EvDivertRate:   "divert-rate",
	EvDivertSize:   "divert-size",
	EvDivertFull:   "divert-full",
	EvRedundant:    "redundant",
	EvMainInsert:   "main-insert",
	EvDelete:       "delete",
	EvModify:       "modify",
	EvViolation:    "violation",
	EvMigStep:      "mig-step",
	EvMigDone:      "mig-done",
	EvMigAbort:     "mig-abort",
	EvMigInterrupt: "mig-interrupt",
	EvReconcile:    "reconcile",
	EvCrash:        "crash",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Event is one fixed-size lifecycle record. No pointers, no strings:
// recording an Event into the ring copies 48 bytes and allocates nothing.
type Event struct {
	Seq  uint64        // monotone sequence number, 1-based
	At   time.Duration // virtual timestamp supplied by the caller
	Kind EventKind
	Step uint8  // migration step ordinal (core.MigrationStep) for EvMigStep
	Rule uint64 // rule ID when the event concerns a single rule, else 0
	A    uint64 // kind-specific datum (see EventKind comments)
	B    uint64 // kind-specific datum, usually latency in nanoseconds
}

// Capture is a flight-recorder snapshot: the last ≤N events at the moment
// a trigger (guarantee violation, reconcile repair) fired, oldest first.
type Capture struct {
	Seq    uint64        // sequence number of the triggering event
	At     time.Duration // virtual time of the trigger
	Reason string
	Events []Event
}

// Tracer is a bounded flow-mod lifecycle recorder. Record appends into a
// preallocated ring under a mutex — zero allocations, a handful of stores —
// so it stays on the agent's hot path. CaptureNow copies the ring into a
// Capture (allocating) and is meant for rare trigger events only.
//
// The zero Tracer is unusable; construct with NewTracer. A nil *Tracer is
// safe to call: every method no-ops, which is how uninstrumented agents
// skip tracing without branching at every call site.
type Tracer struct {
	mu          sync.Mutex
	ring        []Event
	next        uint64 // total events ever recorded; ring index = next % len
	captures    []Capture
	maxCaptures int
	dropped     uint64 // captures discarded because the list was full
}

// NewTracer returns a tracer whose flight recorder keeps the last n events
// (minimum 16) and at most maxCaptures trigger snapshots (minimum 4).
func NewTracer(n, maxCaptures int) *Tracer {
	if n < 16 {
		n = 16
	}
	if maxCaptures < 4 {
		maxCaptures = 4
	}
	return &Tracer{ring: make([]Event, n), maxCaptures: maxCaptures}
}

// Record appends one lifecycle event. Zero allocations; safe for
// concurrent use; no-op on a nil tracer.
func (t *Tracer) Record(at time.Duration, kind EventKind, step uint8, rule, a, b uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.next++
	t.ring[t.next%uint64(len(t.ring))] = Event{
		Seq: t.next, At: at, Kind: kind, Step: step, Rule: rule, A: a, B: b,
	}
	t.mu.Unlock()
}

// Len returns the total number of events recorded so far.
func (t *Tracer) Len() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// snapshotLocked copies the live window of the ring, oldest first.
func (t *Tracer) snapshotLocked() []Event {
	n := t.next
	window := uint64(len(t.ring))
	if n < window {
		window = n
	}
	out := make([]Event, 0, window)
	for s := n - window + 1; s <= n; s++ {
		out = append(out, t.ring[s%uint64(len(t.ring))])
	}
	return out
}

// Events returns the current flight-recorder window, oldest first.
// Allocates; inspection-path only. Nil tracers return nil.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshotLocked()
}

// CaptureNow snapshots the flight recorder because reason fired at virtual
// time at. The snapshot is retained (up to the capture cap; beyond it the
// oldest retained captures stay and new ones are counted as dropped, so
// the first violations of a run — usually the interesting ones — survive).
func (t *Tracer) CaptureNow(at time.Duration, reason string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.captures) >= t.maxCaptures {
		t.dropped++
		return
	}
	t.captures = append(t.captures, Capture{
		Seq:    t.next,
		At:     at,
		Reason: reason,
		Events: t.snapshotLocked(),
	})
}

// Captures returns the retained trigger snapshots (oldest first) and the
// number of triggers dropped after the retention cap filled.
func (t *Tracer) Captures() (caps []Capture, dropped uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	caps = make([]Capture, len(t.captures))
	copy(caps, t.captures)
	return caps, t.dropped
}
