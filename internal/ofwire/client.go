package ofwire

import (
	"fmt"
	"net"
	"sync"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
)

// Client is the controller side of the channel: a synchronous RPC-style
// wrapper over the wire protocol. It is safe for concurrent use; requests
// are serialized on the connection (the agent executes them serially
// anyway — it models a single switch CPU).
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	nextXID uint32
}

// Dial connects to an agent daemon and performs the hello exchange.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(conn)
}

// NewClient wraps an established connection (useful with net.Pipe in
// tests) and performs the hello exchange.
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{conn: conn}
	// Server speaks first.
	hello, err := ReadMessage(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("ofwire: waiting for hello: %w", err)
	}
	if hello.Header.Type != TypeHello {
		conn.Close()
		return nil, fmt.Errorf("ofwire: expected hello, got %s", hello.Header.Type)
	}
	if err := WriteMessage(conn, &Message{Header: Header{Type: TypeHello}}); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close closes the channel.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and waits for its reply.
func (c *Client) roundTrip(req *Message) (*Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextXID++
	req.Header.XID = c.nextXID
	if err := WriteMessage(c.conn, req); err != nil {
		return nil, err
	}
	for {
		resp, err := ReadMessage(c.conn)
		if err != nil {
			return nil, err
		}
		if resp.Header.Type == TypeHello {
			continue // tolerate late hellos
		}
		if resp.Header.XID != req.Header.XID {
			return nil, fmt.Errorf("ofwire: xid mismatch: sent %d, got %d",
				req.Header.XID, resp.Header.XID)
		}
		if resp.Header.Type == TypeError {
			return nil, resp.Error
		}
		return resp, nil
	}
}

// FlowModResult is the controller-visible outcome of a flow-mod.
type FlowModResult struct {
	Latency    time.Duration
	Path       core.InsertPath
	Guaranteed bool
	Violation  bool
	Partitions int
}

// Insert installs a rule on the remote switch.
func (c *Client) Insert(r classifier.Rule) (FlowModResult, error) {
	return c.flowMod(FlowAdd, r)
}

// Delete removes a rule by ID.
func (c *Client) Delete(id classifier.RuleID) (FlowModResult, error) {
	return c.flowMod(FlowDelete, classifier.Rule{ID: id})
}

// Modify updates a live rule.
func (c *Client) Modify(r classifier.Rule) (FlowModResult, error) {
	return c.flowMod(FlowModify, r)
}

func (c *Client) flowMod(cmd FlowModCommand, r classifier.Rule) (FlowModResult, error) {
	resp, err := c.roundTrip(&Message{
		Header:  Header{Type: TypeFlowMod},
		FlowMod: FlowModFromRule(cmd, r),
	})
	if err != nil {
		return FlowModResult{}, err
	}
	if resp.Header.Type != TypeFlowModReply || resp.FlowModReply == nil {
		return FlowModResult{}, fmt.Errorf("ofwire: unexpected reply %s", resp.Header.Type)
	}
	rep := resp.FlowModReply
	return FlowModResult{
		Latency:    time.Duration(rep.LatencyNS),
		Path:       core.InsertPath(rep.Path),
		Guaranteed: rep.Guaranteed,
		Violation:  rep.Violation,
		Partitions: int(rep.Partitions),
	}, nil
}

// Barrier blocks until all previously issued flow-mods have been applied,
// like OpenFlow's barrier.
func (c *Client) Barrier() error {
	resp, err := c.roundTrip(&Message{Header: Header{Type: TypeBarrierRequest}})
	if err != nil {
		return err
	}
	if resp.Header.Type != TypeBarrierReply {
		return fmt.Errorf("ofwire: unexpected reply %s", resp.Header.Type)
	}
	return nil
}

// Echo round-trips a payload (liveness probe).
func (c *Client) Echo(payload []byte) ([]byte, error) {
	resp, err := c.roundTrip(&Message{Header: Header{Type: TypeEchoRequest}, Raw: payload})
	if err != nil {
		return nil, err
	}
	if resp.Header.Type != TypeEchoReply {
		return nil, fmt.Errorf("ofwire: unexpected reply %s", resp.Header.Type)
	}
	return resp.Raw, nil
}

// Stats fetches the agent's counters.
func (c *Client) Stats() (*Stats, error) {
	resp, err := c.roundTrip(&Message{Header: Header{Type: TypeStatsRequest}})
	if err != nil {
		return nil, err
	}
	if resp.Header.Type != TypeStatsReply || resp.Stats == nil {
		return nil, fmt.Errorf("ofwire: unexpected reply %s", resp.Header.Type)
	}
	return resp.Stats, nil
}

// RequestQoS negotiates a new insertion guarantee on the remote switch
// (CreateTCAMQoS over the wire). The switch re-carves its TCAM; installed
// rules are discarded, exactly as slice reconfiguration does on hardware.
func (c *Client) RequestQoS(guarantee time.Duration) (*QoSReply, error) {
	resp, err := c.roundTrip(&Message{
		Header:     Header{Type: TypeQoSRequest},
		QoSRequest: &QoSRequest{GuaranteeNS: uint64(guarantee)},
	})
	if err != nil {
		return nil, err
	}
	if resp.Header.Type != TypeQoSReply || resp.QoSReply == nil {
		return nil, fmt.Errorf("ofwire: unexpected reply %s", resp.Header.Type)
	}
	return resp.QoSReply, nil
}
