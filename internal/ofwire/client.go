package ofwire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/obs"
)

// ErrClientClosed is returned to callers whose requests were cut off by a
// concurrent Close (as opposed to a wire failure).
var ErrClientClosed = errors.New("ofwire: client closed")

// Client is the controller side of the channel. Requests are pipelined:
// many may be in flight on the connection at once, demultiplexed back to
// their callers by transaction ID. The agent still executes them in
// arrival order (it models a single switch CPU), but the wire stays full —
// a caller never waits for another caller's round trip, only for its own
// reply. Safe for concurrent use.
type Client struct {
	conn    net.Conn
	nextXID atomic.Uint32

	// timeoutNS is the default per-request deadline (0 = none), applied by
	// the non-Ctx methods. Atomic so SetRequestTimeout is safe mid-flight.
	timeoutNS atomic.Int64

	// wmu serializes frame writes so concurrent requests cannot interleave
	// bytes on the wire. wbuf, guarded by wmu, is the reused batch encode
	// buffer: a whole TypeFlowModBatch frame is laid out in it and written
	// with a single conn.Write.
	wmu  sync.Mutex
	wbuf []byte

	// pmu guards the pending demux table and the terminal error state.
	pmu     sync.Mutex
	pending map[uint32]chan *Message
	failErr error // non-nil once the reader loop has died
	closed  bool  // Close was called

	readerDone chan struct{}

	// Optional instruments, attached via Instrument before traffic starts.
	// inflight counts XIDs awaiting replies; rtt records wall-clock
	// round-trip time per request (ns). ofwire lives on the wire, outside
	// the virtual-time domain, so wall-clock RTT is the honest measurement.
	inflight *obs.Gauge
	rtt      *obs.Histogram

	// lifecycle, when attached via SetLifecycle, receives XID-keyed
	// submitted/completed notifications for every flow-mod.
	lifecycle FlowLifecycle
}

// FlowLifecycle observes the controller-side lifecycle of flow-mod
// requests, keyed by transaction ID. FlowSubmitted fires just before the
// request enters the pipeline; FlowCompleted fires exactly once per
// submitted XID — with a decoded result on a reply, or with a non-nil
// error when the request failed, was abandoned at its deadline, or was cut
// off by a connection reset or Close. The submitted/completed pairing is
// exact even when the client dies mid-flight: every in-flight XID at the
// moment of a reset completes with that reset's error, which is how a
// load-generation ledger tells "installed" from "lost".
//
// Both callbacks run on the goroutine issuing the request. Implementations
// must be safe for concurrent use; pipelined requests complete
// concurrently.
type FlowLifecycle interface {
	FlowSubmitted(xid uint32, id classifier.RuleID)
	FlowCompleted(xid uint32, id classifier.RuleID, res FlowModResult, err error)
}

// Dial connects to an agent daemon and performs the hello exchange.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(conn)
}

// NewClient wraps an established connection (useful with net.Pipe in
// tests), performs the hello exchange, and starts the response reader.
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{
		conn:       conn,
		pending:    make(map[uint32]chan *Message),
		readerDone: make(chan struct{}),
	}
	// Server speaks first.
	hello, err := ReadMessage(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("ofwire: waiting for hello: %w", err)
	}
	if hello.Header.Type != TypeHello {
		conn.Close()
		return nil, fmt.Errorf("ofwire: expected hello, got %s", hello.Header.Type)
	}
	if err := WriteMessage(conn, &Message{Header: Header{Type: TypeHello}}); err != nil {
		conn.Close()
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

// readLoop demultiplexes responses to their waiting callers by XID. On any
// read error it fails every pending caller with a descriptive error; the
// client is dead from then on.
func (c *Client) readLoop() {
	for {
		resp, err := ReadMessage(c.conn)
		if err != nil {
			c.fail(err)
			return
		}
		if resp.Header.Type == TypeHello {
			continue // tolerate late hellos
		}
		c.pmu.Lock()
		ch, ok := c.pending[resp.Header.XID]
		if ok {
			delete(c.pending, resp.Header.XID)
		}
		c.pmu.Unlock()
		if !ok {
			// A reply nobody waits for (e.g. the caller errored out while
			// writing). Drop it; the XID space never reuses live IDs.
			continue
		}
		ch <- resp
	}
}

// fail marks the client dead and wakes every pending caller.
func (c *Client) fail(cause error) {
	c.pmu.Lock()
	if c.failErr == nil {
		if c.closed {
			c.failErr = ErrClientClosed
		} else {
			c.failErr = fmt.Errorf("ofwire: connection failed: %w", cause)
		}
	}
	for xid, ch := range c.pending {
		delete(c.pending, xid)
		close(ch) // a closed channel signals "read c.failErr"
	}
	c.pmu.Unlock()
	c.conn.Close()
	close(c.readerDone)
}

// Err returns the terminal connection error, or nil while the client is
// healthy.
func (c *Client) Err() error {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.failErr
}

// Close tears down the connection and fails any in-flight requests with
// ErrClientClosed. It is safe to call concurrently and repeatedly, from
// any goroutine, including while requests are blocked.
func (c *Client) Close() error {
	c.pmu.Lock()
	alreadyClosed := c.closed
	c.closed = true
	c.pmu.Unlock()
	err := c.conn.Close()
	if !alreadyClosed {
		// Wait for the reader to observe the close and fail the pending
		// callers, so Close has release semantics.
		<-c.readerDone
	}
	return err
}

// SetRequestTimeout installs a default per-request deadline applied by
// every non-Ctx method (Insert, Barrier, Echo, ...). Zero disables the
// default. Safe to call concurrently with in-flight requests; it affects
// only requests issued afterwards.
func (c *Client) SetRequestTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.timeoutNS.Store(int64(d))
}

// RequestTimeout reports the current default per-request deadline.
func (c *Client) RequestTimeout() time.Duration {
	return time.Duration(c.timeoutNS.Load())
}

// Instrument attaches observability instruments: g gauges the number of
// in-flight requests (registered XIDs awaiting replies), h records each
// request's round-trip time. Either may be nil. Attach before issuing
// requests; the fields are not synchronized against in-flight traffic.
// Reattaching the same instruments to a freshly dialed client after a
// reconnect resumes recording into the same series.
func (c *Client) Instrument(g *obs.Gauge, h *obs.Histogram) {
	c.inflight = g
	c.rtt = h
}

// SetLifecycle attaches a flow-mod lifecycle observer. Attach before
// issuing requests, like Instrument; nil detaches. As with Instrument,
// reattach the observer to the replacement client after a reconnect to
// keep one continuous ledger across resets.
func (c *Client) SetLifecycle(l FlowLifecycle) {
	c.lifecycle = l
}

// roundTrip sends one request and waits for its reply under the client's
// default deadline. Multiple roundTrips may be in flight concurrently; each
// caller blocks only on its own XID.
func (c *Client) roundTrip(req *Message) (*Message, error) {
	if d := c.RequestTimeout(); d > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), d)
		defer cancel()
		return c.roundTripCtx(ctx, req)
	}
	return c.roundTripCtx(context.Background(), req)
}

// roundTripCtx sends one request and waits for its reply or the context's
// deadline, whichever comes first. A timed-out request abandons only its
// own XID: the connection and the other in-flight requests stay healthy,
// and a late reply to the abandoned XID is dropped by the read loop.
func (c *Client) roundTripCtx(ctx context.Context, req *Message) (*Message, error) {
	xid := req.Header.XID
	if xid == 0 {
		// The flow-mod path pre-assigns XIDs so lifecycle observers see the
		// ID before the request enters the pipeline; everything else gets
		// one here. Live XIDs are never reused: the counter only grows.
		xid = c.nextXID.Add(1)
		req.Header.XID = xid
	}
	ch := make(chan *Message, 1)

	var start time.Time
	if c.rtt != nil {
		start = time.Now()
	}
	if c.inflight != nil {
		c.inflight.Add(1)
		defer c.inflight.Add(-1)
	}

	c.pmu.Lock()
	if c.failErr != nil {
		err := c.failErr
		c.pmu.Unlock()
		return nil, err
	}
	if c.closed {
		c.pmu.Unlock()
		return nil, ErrClientClosed
	}
	c.pending[xid] = ch
	c.pmu.Unlock()

	c.wmu.Lock()
	err := WriteMessage(c.conn, req)
	c.wmu.Unlock()
	if err != nil {
		c.pmu.Lock()
		delete(c.pending, xid)
		if c.failErr != nil {
			err = c.failErr
		}
		c.pmu.Unlock()
		return nil, err
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, c.Err()
		}
		if c.rtt != nil {
			// Error replies completed a round trip too; only failed or
			// abandoned requests go unrecorded.
			c.rtt.RecordDuration(time.Since(start))
		}
		if resp.Header.Type == TypeError {
			return nil, resp.Error
		}
		return resp, nil
	case <-ctx.Done():
		c.pmu.Lock()
		delete(c.pending, xid)
		c.pmu.Unlock()
		// The reply channel is buffered, so a reply racing this removal
		// parks harmlessly in the channel and is garbage-collected.
		return nil, fmt.Errorf("ofwire: request %d abandoned: %w", xid, ctx.Err())
	}
}

// FlowModResult is the controller-visible outcome of a flow-mod.
type FlowModResult struct {
	Latency    time.Duration
	Path       core.InsertPath
	Guaranteed bool
	Violation  bool
	Partitions int
}

// Insert installs a rule on the remote switch.
func (c *Client) Insert(r classifier.Rule) (FlowModResult, error) {
	return c.flowMod(FlowAdd, r)
}

// InsertCtx is Insert bounded by the context's deadline/cancellation.
func (c *Client) InsertCtx(ctx context.Context, r classifier.Rule) (FlowModResult, error) {
	return c.flowModCtx(ctx, FlowAdd, r)
}

// Delete removes a rule by ID.
func (c *Client) Delete(id classifier.RuleID) (FlowModResult, error) {
	return c.flowMod(FlowDelete, classifier.Rule{ID: id})
}

// DeleteCtx is Delete bounded by the context's deadline/cancellation.
func (c *Client) DeleteCtx(ctx context.Context, id classifier.RuleID) (FlowModResult, error) {
	return c.flowModCtx(ctx, FlowDelete, classifier.Rule{ID: id})
}

// Modify updates a live rule.
func (c *Client) Modify(r classifier.Rule) (FlowModResult, error) {
	return c.flowMod(FlowModify, r)
}

// ModifyCtx is Modify bounded by the context's deadline/cancellation.
func (c *Client) ModifyCtx(ctx context.Context, r classifier.Rule) (FlowModResult, error) {
	return c.flowModCtx(ctx, FlowModify, r)
}

func (c *Client) flowMod(cmd FlowModCommand, r classifier.Rule) (FlowModResult, error) {
	req := &Message{
		Header:  Header{Type: TypeFlowMod},
		FlowMod: FlowModFromRule(cmd, r),
	}
	c.notifySubmitted(req, r.ID)
	resp, err := c.roundTrip(req)
	res, err := decodeFlowModResult(resp, err)
	c.notifyCompleted(req, r.ID, res, err)
	return res, err
}

func (c *Client) flowModCtx(ctx context.Context, cmd FlowModCommand, r classifier.Rule) (FlowModResult, error) {
	req := &Message{
		Header:  Header{Type: TypeFlowMod},
		FlowMod: FlowModFromRule(cmd, r),
	}
	c.notifySubmitted(req, r.ID)
	resp, err := c.roundTripCtx(ctx, req)
	res, err := decodeFlowModResult(resp, err)
	c.notifyCompleted(req, r.ID, res, err)
	return res, err
}

// notifySubmitted pre-assigns the request's XID and announces it to the
// lifecycle observer. No-op without an observer — the XID is then assigned
// inside roundTripCtx as usual.
func (c *Client) notifySubmitted(req *Message, id classifier.RuleID) {
	if c.lifecycle == nil {
		return
	}
	req.Header.XID = c.nextXID.Add(1)
	c.lifecycle.FlowSubmitted(req.Header.XID, id)
}

// notifyCompleted reports the request's terminal outcome. Every submitted
// flow-mod reaches here exactly once: replies, error replies, abandoned
// deadlines and connection failures all complete the XID.
func (c *Client) notifyCompleted(req *Message, id classifier.RuleID, res FlowModResult, err error) {
	if c.lifecycle == nil {
		return
	}
	c.lifecycle.FlowCompleted(req.Header.XID, id, res, err)
}

func decodeFlowModResult(resp *Message, err error) (FlowModResult, error) {
	if err != nil {
		return FlowModResult{}, err
	}
	if resp.Header.Type != TypeFlowModReply || resp.FlowModReply == nil {
		return FlowModResult{}, fmt.Errorf("ofwire: unexpected reply %s", resp.Header.Type)
	}
	rep := resp.FlowModReply
	return FlowModResult{
		Latency:    time.Duration(rep.LatencyNS),
		Path:       core.InsertPath(rep.Path),
		Guaranteed: rep.Guaranteed,
		Violation:  rep.Violation,
		Partitions: int(rep.Partitions),
	}, nil
}

// Barrier blocks until all previously issued flow-mods have been applied,
// like OpenFlow's barrier. The agent handles frames in arrival order, so a
// barrier fences everything written to the wire before it.
func (c *Client) Barrier() error {
	return decodeBarrier(c.roundTrip(&Message{Header: Header{Type: TypeBarrierRequest}}))
}

// BarrierCtx is Barrier bounded by the context's deadline/cancellation.
func (c *Client) BarrierCtx(ctx context.Context) error {
	return decodeBarrier(c.roundTripCtx(ctx, &Message{Header: Header{Type: TypeBarrierRequest}}))
}

func decodeBarrier(resp *Message, err error) error {
	if err != nil {
		return err
	}
	if resp.Header.Type != TypeBarrierReply {
		return fmt.Errorf("ofwire: unexpected reply %s", resp.Header.Type)
	}
	return nil
}

// Echo round-trips a payload (liveness probe).
func (c *Client) Echo(payload []byte) ([]byte, error) {
	return decodeEcho(c.roundTrip(&Message{Header: Header{Type: TypeEchoRequest}, Raw: payload}))
}

// EchoCtx is Echo bounded by the context's deadline/cancellation.
func (c *Client) EchoCtx(ctx context.Context, payload []byte) ([]byte, error) {
	return decodeEcho(c.roundTripCtx(ctx, &Message{Header: Header{Type: TypeEchoRequest}, Raw: payload}))
}

func decodeEcho(resp *Message, err error) ([]byte, error) {
	if err != nil {
		return nil, err
	}
	if resp.Header.Type != TypeEchoReply {
		return nil, fmt.Errorf("ofwire: unexpected reply %s", resp.Header.Type)
	}
	return resp.Raw, nil
}

// Stats fetches the agent's counters.
func (c *Client) Stats() (*Stats, error) {
	return decodeStats(c.roundTrip(&Message{Header: Header{Type: TypeStatsRequest}}))
}

// StatsCtx is Stats bounded by the context's deadline/cancellation.
func (c *Client) StatsCtx(ctx context.Context) (*Stats, error) {
	return decodeStats(c.roundTripCtx(ctx, &Message{Header: Header{Type: TypeStatsRequest}}))
}

func decodeStats(resp *Message, err error) (*Stats, error) {
	if err != nil {
		return nil, err
	}
	if resp.Header.Type != TypeStatsReply || resp.Stats == nil {
		return nil, fmt.Errorf("ofwire: unexpected reply %s", resp.Header.Type)
	}
	return resp.Stats, nil
}

// DumpRules fetches the agent's complete controller-visible rule set,
// paging through the multipart rules dump until the agent reports no more
// entries. The result is sorted by rule ID. This is the observed view a
// level-triggered reconciler diffs its desired state against; cursor
// pagination keeps the dump coherent under concurrent flow-mods (an entry
// present for the whole dump appears exactly once).
func (c *Client) DumpRules() ([]classifier.Rule, error) {
	return c.DumpRulesCtx(context.Background())
}

// DumpRulesCtx is DumpRules bounded by the context's deadline/cancellation
// (checked per page; the client's default request timeout also applies to
// each page individually).
func (c *Client) DumpRulesCtx(ctx context.Context) ([]classifier.Rule, error) {
	return c.dumpRulesPaged(ctx, 0) // 0: let the agent pick the frame-bound page
}

// dumpRulesPaged walks the multipart dump with an explicit page size
// (tests shrink it to exercise multi-page dumps without frame-sized rule
// counts).
func (c *Client) dumpRulesPaged(ctx context.Context, pageSize uint16) ([]classifier.Rule, error) {
	var out []classifier.Rule
	after := uint64(0)
	for {
		req := &Message{
			Header:       Header{Type: TypeRulesRequest},
			RulesRequest: &RulesRequest{After: after, Max: pageSize},
		}
		var resp *Message
		var err error
		if d := c.RequestTimeout(); d > 0 {
			pageCtx, cancel := context.WithTimeout(ctx, d)
			resp, err = c.roundTripCtx(pageCtx, req)
			cancel()
		} else {
			resp, err = c.roundTripCtx(ctx, req)
		}
		if err != nil {
			return nil, err
		}
		if resp.Header.Type != TypeRulesReply || resp.RulesReply == nil {
			return nil, fmt.Errorf("ofwire: unexpected reply %s", resp.Header.Type)
		}
		for _, e := range resp.RulesReply.Rules {
			out = append(out, e.Rule())
			after = e.RuleID
		}
		if !resp.RulesReply.More {
			return out, nil
		}
		if len(resp.RulesReply.Rules) == 0 {
			return nil, fmt.Errorf("ofwire: rules dump stalled: empty page with more=true")
		}
	}
}

// RequestQoS negotiates a new insertion guarantee on the remote switch
// (CreateTCAMQoS over the wire). The switch re-carves its TCAM; installed
// rules are discarded, exactly as slice reconfiguration does on hardware.
func (c *Client) RequestQoS(guarantee time.Duration) (*QoSReply, error) {
	resp, err := c.roundTrip(&Message{
		Header:     Header{Type: TypeQoSRequest},
		QoSRequest: &QoSRequest{GuaranteeNS: uint64(guarantee)},
	})
	if err != nil {
		return nil, err
	}
	if resp.Header.Type != TypeQoSReply || resp.QoSReply == nil {
		return nil, fmt.Errorf("ofwire: unexpected reply %s", resp.Header.Type)
	}
	return resp.QoSReply, nil
}
