package ofwire

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hermes/internal/testutil"
)

// fakePeer runs a scripted agent on the server end of a net.Pipe: it
// performs the hello exchange and hands the connection to fn.
func fakePeer(t *testing.T, fn func(conn net.Conn) error) *Client {
	t.Helper()
	// The client's read loop and the scripted peer goroutine must both be
	// gone once the cleanups below have closed the pipe.
	testutil.VerifyNoLeaks(t)
	cc, sc := net.Pipe()
	errCh := make(chan error, 1)
	go func() {
		errCh <- func() error {
			if err := WriteMessage(sc, &Message{Header: Header{Type: TypeHello}}); err != nil {
				return err
			}
			if _, err := ReadMessage(sc); err != nil {
				return err
			}
			return fn(sc)
		}()
	}()
	t.Cleanup(func() {
		if err := <-errCh; err != nil {
			t.Errorf("fake peer: %v", err)
		}
	})
	c, err := NewClient(cc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestClientPipelinesTwoInFlight proves the client sustains at least two
// concurrent in-flight requests on one connection: the peer refuses to
// reply to the first request until it has *read* the second, which
// deadlocks a client that serializes round trips (net.Pipe has no
// buffering — the second request can only be written if the client does
// not wait for the first reply). Replies are issued in reverse order, so
// completion also proves XID demultiplexing.
func TestClientPipelinesTwoInFlight(t *testing.T) {
	c := fakePeer(t, func(conn net.Conn) error {
		r1, err := ReadMessage(conn)
		if err != nil {
			return err
		}
		r2, err := ReadMessage(conn) // both requests on the wire at once
		if err != nil {
			return err
		}
		for _, req := range []*Message{r2, r1} { // reverse order
			reply := &Message{Header: Header{Type: TypeEchoReply, XID: req.Header.XID}, Raw: req.Raw}
			if err := WriteMessage(conn, reply); err != nil {
				return err
			}
		}
		conn.Close()
		return nil
	})

	results := make(chan error, 2)
	for _, payload := range []string{"first", "second"} {
		payload := payload
		go func() {
			got, err := c.Echo([]byte(payload))
			if err != nil {
				results <- err
				return
			}
			if string(got) != payload {
				results <- fmt.Errorf("echo %q returned %q", payload, got)
				return
			}
			results <- nil
		}()
	}
	timeout := time.After(5 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case err := <-results:
			if err != nil {
				t.Fatal(err)
			}
		case <-timeout:
			t.Fatal("deadlock: client did not pipeline two in-flight requests")
		}
	}
}

// TestReadErrorFailsAllPending checks that a wire failure wakes every
// pending caller with a descriptive error instead of leaving them blocked.
func TestReadErrorFailsAllPending(t *testing.T) {
	const callers = 4
	c := fakePeer(t, func(conn net.Conn) error {
		for i := 0; i < callers; i++ {
			if _, err := ReadMessage(conn); err != nil {
				return err
			}
		}
		conn.Close() // die with every request pending
		return nil
	})

	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = c.Echo([]byte("ping"))
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pending callers still blocked after connection failure")
	}
	for i, err := range errs {
		if err == nil {
			t.Fatalf("caller %d: nil error after connection failure", i)
		}
		if !strings.Contains(err.Error(), "connection failed") {
			t.Errorf("caller %d: undescriptive error %v", i, err)
		}
	}
	// The client is terminally dead: later calls fail immediately.
	if _, err := c.Echo([]byte("again")); err == nil {
		t.Error("echo succeeded on a dead client")
	}
	if c.Err() == nil {
		t.Error("Err() nil on a dead client")
	}
}

// TestConcurrentClose checks Close is safe to call concurrently and
// repeatedly while requests are in flight; the cut callers see
// ErrClientClosed.
func TestConcurrentClose(t *testing.T) {
	const callers = 3
	started := make(chan struct{}, callers)
	c := fakePeer(t, func(conn net.Conn) error {
		for i := 0; i < callers; i++ {
			if _, err := ReadMessage(conn); err != nil {
				return err
			}
			started <- struct{}{}
		}
		// Never reply; wait for the client to hang up.
		_, err := ReadMessage(conn)
		if err == nil {
			return errors.New("expected close")
		}
		return nil
	})

	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = c.Echo([]byte("stall"))
		}()
	}
	for i := 0; i < callers; i++ {
		<-started // all requests on the wire
	}
	var cwg sync.WaitGroup
	for i := 0; i < 4; i++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			c.Close() //nolint:errcheck
		}()
	}
	cwg.Wait()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrClientClosed) {
			t.Errorf("caller %d: err = %v, want ErrClientClosed", i, err)
		}
	}
}
