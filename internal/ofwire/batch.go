package ofwire

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
)

// This file implements the vectored flow-mod path (DESIGN.md §15): N ops
// ride one TypeFlowModBatch frame under one XID, encoded into a reused
// buffer and written with a single net.Conn write, and the server applies
// the whole batch under one agent-lock acquisition. Per-op outcomes come
// back in one TypeFlowModBatchReply. The client splits oversized batches
// transparently at MaxBatchOps so callers never see the 64KiB codec bound.
//
// Batch ops do not run through the FlowLifecycle observer: the per-XID
// submitted/completed pairing is a per-op wire concept, and batch callers
// get every per-op outcome synchronously from the returned slice instead.

// BatchResult is the controller-visible outcome of one op inside a batch.
// Err, when non-nil, is an *ErrorBody carrying the remote status code —
// classifiable exactly like a per-op error frame.
type BatchResult struct {
	Result FlowModResult
	Err    error
}

// InsertBatch installs rules on the remote switch in order, vectoring them
// into as few frames as possible. It returns one result per rule; a non-nil
// error means the wire died and only the returned prefix was decided.
func (c *Client) InsertBatch(rules []classifier.Rule) ([]BatchResult, error) {
	return c.InsertBatchCtx(context.Background(), rules)
}

// InsertBatchCtx is InsertBatch bounded by the context's deadline.
func (c *Client) InsertBatchCtx(ctx context.Context, rules []classifier.Rule) ([]BatchResult, error) {
	return c.ApplyBatchCtx(ctx, flowModsFromRules(FlowAdd, rules))
}

// DeleteBatch removes rules by ID in order, vectored like InsertBatch.
func (c *Client) DeleteBatch(ids []classifier.RuleID) ([]BatchResult, error) {
	return c.DeleteBatchCtx(context.Background(), ids)
}

// DeleteBatchCtx is DeleteBatch bounded by the context's deadline.
func (c *Client) DeleteBatchCtx(ctx context.Context, ids []classifier.RuleID) ([]BatchResult, error) {
	ops := make([]FlowMod, len(ids))
	for i, id := range ids {
		ops[i] = FlowMod{Command: FlowDelete, RuleID: uint64(id)}
	}
	return c.ApplyBatchCtx(ctx, ops)
}

// ModifyBatch updates live rules in order, vectored like InsertBatch.
func (c *Client) ModifyBatch(rules []classifier.Rule) ([]BatchResult, error) {
	return c.ModifyBatchCtx(context.Background(), rules)
}

// ModifyBatchCtx is ModifyBatch bounded by the context's deadline.
func (c *Client) ModifyBatchCtx(ctx context.Context, rules []classifier.Rule) ([]BatchResult, error) {
	return c.ApplyBatchCtx(ctx, flowModsFromRules(FlowModify, rules))
}

func flowModsFromRules(cmd FlowModCommand, rules []classifier.Rule) []FlowMod {
	ops := make([]FlowMod, len(rules))
	for i := range rules {
		ops[i] = *FlowModFromRule(cmd, rules[i])
	}
	return ops
}

// ApplyBatch sends a mixed batch of flow-mods, applying the client's
// default request timeout to each frame individually (one frame per
// MaxBatchOps chunk).
func (c *Client) ApplyBatch(ops []FlowMod) ([]BatchResult, error) {
	return c.applyBatch(context.Background(), ops, true)
}

// ApplyBatchCtx is ApplyBatch bounded by the context's deadline, layered
// with the client's default per-request timeout per frame.
func (c *Client) ApplyBatchCtx(ctx context.Context, ops []FlowMod) ([]BatchResult, error) {
	return c.applyBatch(ctx, ops, true)
}

// applyBatch chunks ops at the frame bound and round-trips each chunk.
// Ops apply strictly in slice order: chunks are sent sequentially and the
// agent applies each frame's ops in order, so splitting never reorders.
// On a wire or decode error the results decided so far are returned with
// the error; the caller cannot assume anything about the remainder.
func (c *Client) applyBatch(ctx context.Context, ops []FlowMod, layerTimeout bool) ([]BatchResult, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	results := make([]BatchResult, 0, len(ops))
	for start := 0; start < len(ops); start += MaxBatchOps {
		end := start + MaxBatchOps
		if end > len(ops) {
			end = len(ops)
		}
		chunk := ops[start:end]
		var resp *Message
		var err error
		if d := c.RequestTimeout(); layerTimeout && d > 0 {
			chunkCtx, cancel := context.WithTimeout(ctx, d)
			resp, err = c.batchRoundTrip(chunkCtx, chunk)
			cancel()
		} else {
			resp, err = c.batchRoundTrip(ctx, chunk)
		}
		if err != nil {
			return results, err
		}
		if resp.Header.Type != TypeFlowModBatchReply || resp.FlowModBatchReply == nil {
			return results, fmt.Errorf("ofwire: unexpected reply %s", resp.Header.Type)
		}
		entries := resp.FlowModBatchReply.Entries
		if len(entries) != len(chunk) {
			return results, fmt.Errorf("ofwire: batch reply carries %d entries for %d ops",
				len(entries), len(chunk))
		}
		for _, e := range entries {
			results = append(results, BatchResult{
				Result: FlowModResult{
					Latency:    time.Duration(e.Reply.LatencyNS),
					Path:       core.InsertPath(e.Reply.Path),
					Guaranteed: e.Reply.Guaranteed,
					Violation:  e.Reply.Violation,
					Partitions: int(e.Reply.Partitions),
				},
				Err: e.Err(),
			})
		}
	}
	return results, nil
}

// batchRoundTrip registers one XID, encodes the whole frame into the
// client's reused write buffer, issues a single conn.Write, and waits for
// the matching reply. len(ops) must be ≤ MaxBatchOps.
func (c *Client) batchRoundTrip(ctx context.Context, ops []FlowMod) (*Message, error) {
	xid := c.nextXID.Add(1)
	ch := make(chan *Message, 1)

	var start time.Time
	if c.rtt != nil {
		start = time.Now()
	}
	if c.inflight != nil {
		c.inflight.Add(1)
		defer c.inflight.Add(-1)
	}

	c.pmu.Lock()
	if c.failErr != nil {
		err := c.failErr
		c.pmu.Unlock()
		return nil, err
	}
	if c.closed {
		c.pmu.Unlock()
		return nil, ErrClientClosed
	}
	c.pending[xid] = ch
	c.pmu.Unlock()

	c.wmu.Lock()
	err := c.writeBatchLocked(xid, ops)
	c.wmu.Unlock()
	if err != nil {
		c.pmu.Lock()
		delete(c.pending, xid)
		if c.failErr != nil {
			err = c.failErr
		}
		c.pmu.Unlock()
		return nil, err
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, c.Err()
		}
		if c.rtt != nil {
			c.rtt.RecordDuration(time.Since(start))
		}
		if resp.Header.Type == TypeError {
			return nil, resp.Error
		}
		return resp, nil
	case <-ctx.Done():
		c.pmu.Lock()
		delete(c.pending, xid)
		c.pmu.Unlock()
		return nil, fmt.Errorf("ofwire: request %d abandoned: %w", xid, ctx.Err())
	}
}

// writeBatchLocked encodes header + batch body into c.wbuf and writes the
// frame with one syscall. Caller holds c.wmu; the buffer is reused across
// batches, so the steady-state wire path allocates nothing.
func (c *Client) writeBatchLocked(xid uint32, ops []FlowMod) error {
	if len(ops) > MaxBatchOps {
		return ErrTooLarge
	}
	total := headerLen + batchFixedLen + flowModLen*len(ops)
	if cap(c.wbuf) < total {
		c.wbuf = make([]byte, total)
	}
	b := c.wbuf[:total]
	b[0] = Version
	b[1] = byte(TypeFlowModBatch)
	binary.BigEndian.PutUint16(b[2:4], uint16(total))
	binary.BigEndian.PutUint32(b[4:8], xid)
	binary.BigEndian.PutUint16(b[8:10], uint16(len(ops)))
	for i := range ops {
		encodeFlowModInto(b[headerLen+batchFixedLen+i*flowModLen:], &ops[i])
	}
	_, err := c.conn.Write(b)
	return err
}

// doFlowModBatch applies one vectored flow-mod frame: the whole batch runs
// under a single server-lock acquisition (and a single agent-lock round
// trip inside core.Agent.ApplyBatch), which is the point — per-op lock and
// snapshot costs are amortized across the frame. Per-op failures become
// status codes in the reply; a frame-level Error is reserved for malformed
// batches.
func (s *AgentServer) doFlowModBatch(req *Message) *Message {
	if req.FlowModBatch == nil {
		return errorMsg(ErrCodeBadRequest, "empty flow-mod-batch")
	}
	ops := req.FlowModBatch.Ops
	batch := make([]core.BatchOp, len(ops))
	for i := range ops {
		var kind core.BatchKind
		switch ops[i].Command {
		case FlowAdd:
			kind = core.BatchInsert
		case FlowDelete:
			kind = core.BatchDelete
		case FlowModify:
			kind = core.BatchModify
		default:
			return errorMsg(ErrCodeBadRequest, "unknown flow-mod command in batch")
		}
		batch[i] = core.BatchOp{Kind: kind, Rule: ops[i].Rule()}
	}
	s.mu.Lock()
	results := s.agent.ApplyBatch(s.now(), batch, nil)
	s.mu.Unlock()
	entries := make([]BatchReplyEntry, len(ops))
	for i, br := range results {
		if br.Err != nil {
			entries[i].Code = errCodeFor(br.Err)
			entries[i].Reply.RuleID = ops[i].RuleID
			continue
		}
		entries[i].Reply = FlowModReply{
			RuleID:     ops[i].RuleID,
			LatencyNS:  uint64(br.Res.Latency),
			Path:       clampU8(int(br.Res.Path)),
			Guaranteed: br.Res.Guaranteed,
			Violation:  br.Res.Violation,
			Partitions: clampU8(br.Res.Partitions),
		}
	}
	return &Message{
		Header:            Header{Type: TypeFlowModBatchReply},
		FlowModBatchReply: &FlowModBatchReply{Entries: entries},
	}
}
