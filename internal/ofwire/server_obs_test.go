package ofwire

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/obs"
	"hermes/internal/tcam"
	"hermes/internal/testutil"
)

// TestAgentServerMetricsEndpoint drives a live agent daemon over the wire
// and asserts that /metrics then serves parseable Prometheus text carrying
// at least one counter, one gauge, and one histogram fed by that traffic.
func TestAgentServerMetricsEndpoint(t *testing.T) {
	testutil.VerifyNoLeaks(t)

	reg := obs.NewRegistry()
	observer := core.NewObserver(reg, 256)
	srv, err := NewAgentServer("obs-sw", tcam.Profiles()[0], core.Config{
		Guarantee:        5 * time.Millisecond,
		DisableRateLimit: true,
		Observer:         observer,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = func(string, ...interface{}) {}
	srv.RegisterObs(reg)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()

	client, err := Dial(lis.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	inflight := reg.Gauge("hermes_test_inflight", "test client in-flight requests")
	rtt := reg.Histogram("hermes_test_rtt_ns", "ns", "test client round-trip time")
	client.Instrument(inflight, rtt)

	const inserts = 20
	for i := 1; i <= inserts; i++ {
		r := classifier.Rule{
			ID:       classifier.RuleID(i),
			Match:    classifier.DstMatch(classifier.NewPrefix(uint32(i)<<16|0x0A000000, 24)),
			Priority: int32(i%7 + 1),
		}
		if _, err := client.Insert(r); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}

	hsrv := httptest.NewServer(obs.NewMux(reg, observer.Tracer))
	defer hsrv.Close()

	body := httpGet(t, hsrv.URL+"/metrics")
	if ct := contentType(t, hsrv.URL+"/metrics"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain prefix", ct)
	}

	// Counter fed by the live agent through the scrape-time closure.
	if !strings.Contains(body, "hermes_agent_inserts_total 20") {
		t.Errorf("/metrics missing live insert counter; got:\n%s", grepLines(body, "inserts_total"))
	}
	// Gauge: occupancy of the carved tables.
	if !strings.Contains(body, `hermes_tcam_occupancy{table="shadow"}`) {
		t.Error("/metrics missing shadow occupancy gauge")
	}
	// Histogram: per-op latency recorded by the Observer on every insert,
	// with its cumulative buckets and the +Inf terminator.
	if !strings.Contains(body, `hermes_agent_op_latency_ns_count{class="shadow"}`) &&
		!strings.Contains(body, `hermes_agent_op_latency_ns_count{class="main"}`) {
		t.Errorf("/metrics missing op latency histogram; got:\n%s", grepLines(body, "op_latency"))
	}
	if !strings.Contains(body, `le="+Inf"`) {
		t.Error("/metrics histogram missing +Inf bucket")
	}
	// The wire client's RTT histogram saw all twenty round trips.
	if !strings.Contains(body, "hermes_test_rtt_ns_count 20") {
		t.Errorf("client RTT histogram not fed; got:\n%s", grepLines(body, "test_rtt"))
	}
	if !strings.Contains(body, "hermes_test_inflight 0") {
		t.Errorf("in-flight gauge did not return to zero; got:\n%s", grepLines(body, "inflight"))
	}

	// The trace endpoint replays the lifecycle events of the same traffic.
	trace := httpGet(t, hsrv.URL+"/debug/trace")
	if !strings.Contains(trace, `"recorded": 20`) {
		t.Errorf("/debug/trace did not record the inserts; got: %.200s", trace)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	return string(b)
}

func contentType(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.Header.Get("Content-Type")
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
