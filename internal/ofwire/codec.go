package ofwire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// This file implements the binary codec: fixed-layout, big-endian bodies
// behind the 8-byte header, mirroring OpenFlow's framing discipline.

const (
	flowModLen      = 28
	flowModReplyLen = 24
	statsLen        = 64
	qosRequestLen   = 8
	qosReplyLen     = 24
	errorFixedLen   = 2

	// rules-dump framing: a fixed prefix (entry count) + a more-flag byte,
	// then count fixed-layout entries.
	rulesRequestLen    = 10
	rulesReplyFixedLen = 2
	ruleEntryLen       = 25

	// batch framing: a uint16 op count, then count fixed-layout bodies.
	// The reply entry is a uint16 status code plus a 20-byte flow-mod
	// reply; 22 < 28 keeps every well-formed batch's reply encodable.
	batchFixedLen      = 2
	batchReplyEntryLen = 22
)

// WriteMessage encodes and writes one frame.
func WriteMessage(w io.Writer, m *Message) error {
	body, err := encodeBody(m)
	if err != nil {
		return err
	}
	total := headerLen + len(body)
	// The length field is a uint16, so a frame of exactly MaxMessageLen
	// (1<<16) would wrap to 0; the largest encodable frame is one byte
	// shorter.
	if total >= MaxMessageLen {
		return ErrTooLarge
	}
	var hdr [headerLen]byte
	hdr[0] = Version
	hdr[1] = byte(m.Header.Type)
	binary.BigEndian.PutUint16(hdr[2:4], uint16(total))
	binary.BigEndian.PutUint32(hdr[4:8], m.Header.XID)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

func encodeBody(m *Message) ([]byte, error) {
	switch m.Header.Type {
	case TypeHello, TypeBarrierRequest, TypeBarrierReply, TypeStatsRequest:
		return nil, nil
	case TypeEchoRequest, TypeEchoReply:
		return m.Raw, nil
	case TypeFlowMod:
		if m.FlowMod == nil {
			return nil, fmt.Errorf("ofwire: flow-mod frame without body")
		}
		return encodeFlowModFixed(m.FlowMod), nil
	case TypeFlowModReply:
		r := m.FlowModReply
		if r == nil {
			return nil, fmt.Errorf("ofwire: flow-mod-reply frame without body")
		}
		b := make([]byte, flowModReplyLen)
		binary.BigEndian.PutUint64(b[0:8], r.RuleID)
		binary.BigEndian.PutUint64(b[8:16], r.LatencyNS)
		b[16] = r.Path
		b[17] = boolByte(r.Guaranteed)
		b[18] = boolByte(r.Violation)
		b[19] = r.Partitions
		return b, nil
	case TypeStatsReply:
		s := m.Stats
		if s == nil {
			return nil, fmt.Errorf("ofwire: stats-reply frame without body")
		}
		b := make([]byte, statsLen)
		binary.BigEndian.PutUint64(b[0:8], s.Inserts)
		binary.BigEndian.PutUint64(b[8:16], s.ShadowInserts)
		binary.BigEndian.PutUint64(b[16:24], s.MainInserts)
		binary.BigEndian.PutUint64(b[24:32], s.Bypasses)
		binary.BigEndian.PutUint64(b[32:40], s.Violations)
		binary.BigEndian.PutUint64(b[40:48], s.Migrations)
		binary.BigEndian.PutUint32(b[48:52], s.ShadowOcc)
		binary.BigEndian.PutUint32(b[52:56], s.MainOcc)
		binary.BigEndian.PutUint32(b[56:60], s.ShadowSize)
		binary.BigEndian.PutUint32(b[60:64], s.OverheadPPM)
		// MaxRateMilli rides in a trailing extension to keep the fixed
		// layout stable.
		ext := make([]byte, 8)
		binary.BigEndian.PutUint64(ext, s.MaxRateMilli)
		return append(b, ext...), nil
	case TypeQoSRequest:
		q := m.QoSRequest
		if q == nil {
			return nil, fmt.Errorf("ofwire: qos-request frame without body")
		}
		b := make([]byte, qosRequestLen)
		binary.BigEndian.PutUint64(b, q.GuaranteeNS)
		return b, nil
	case TypeQoSReply:
		q := m.QoSReply
		if q == nil {
			return nil, fmt.Errorf("ofwire: qos-reply frame without body")
		}
		b := make([]byte, qosReplyLen)
		binary.BigEndian.PutUint32(b[0:4], q.ShadowEntries)
		binary.BigEndian.PutUint32(b[4:8], q.OverheadPPM)
		binary.BigEndian.PutUint64(b[8:16], q.MaxRateMilli)
		binary.BigEndian.PutUint64(b[16:24], q.GuaranteeNS)
		return b, nil
	case TypeError:
		e := m.Error
		if e == nil {
			return nil, fmt.Errorf("ofwire: error frame without body")
		}
		b := make([]byte, errorFixedLen+len(e.Reason))
		binary.BigEndian.PutUint16(b[0:2], uint16(e.Code))
		copy(b[2:], e.Reason)
		return b, nil
	case TypeFlowModBatch:
		fb := m.FlowModBatch
		if fb == nil {
			return nil, fmt.Errorf("ofwire: flow-mod-batch frame without body")
		}
		if len(fb.Ops) > MaxBatchOps {
			return nil, ErrTooLarge
		}
		b := make([]byte, batchFixedLen+flowModLen*len(fb.Ops))
		binary.BigEndian.PutUint16(b[0:2], uint16(len(fb.Ops)))
		for i := range fb.Ops {
			encodeFlowModInto(b[batchFixedLen+i*flowModLen:], &fb.Ops[i])
		}
		return b, nil
	case TypeFlowModBatchReply:
		fb := m.FlowModBatchReply
		if fb == nil {
			return nil, fmt.Errorf("ofwire: flow-mod-batch-reply frame without body")
		}
		if len(fb.Entries) > MaxBatchOps {
			return nil, ErrTooLarge
		}
		b := make([]byte, batchFixedLen+batchReplyEntryLen*len(fb.Entries))
		binary.BigEndian.PutUint16(b[0:2], uint16(len(fb.Entries)))
		for i, e := range fb.Entries {
			encodeBatchReplyEntry(b[batchFixedLen+i*batchReplyEntryLen:], e)
		}
		return b, nil
	case TypeRulesRequest:
		q := m.RulesRequest
		if q == nil {
			return nil, fmt.Errorf("ofwire: rules-request frame without body")
		}
		b := make([]byte, rulesRequestLen)
		binary.BigEndian.PutUint64(b[0:8], q.After)
		binary.BigEndian.PutUint16(b[8:10], q.Max)
		return b, nil
	case TypeRulesReply:
		q := m.RulesReply
		if q == nil {
			return nil, fmt.Errorf("ofwire: rules-reply frame without body")
		}
		if len(q.Rules) > MaxRuleEntries {
			return nil, ErrTooLarge
		}
		b := make([]byte, rulesReplyFixedLen+1+ruleEntryLen*len(q.Rules))
		binary.BigEndian.PutUint16(b[0:2], uint16(len(q.Rules)))
		b[2] = boolByte(q.More)
		for i, e := range q.Rules {
			encodeRuleEntry(b[rulesReplyFixedLen+1+i*ruleEntryLen:], e)
		}
		return b, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, m.Header.Type)
	}
}

// encodeRuleEntry lays out the 25-byte rule-entry body:
//
//	0-7    rule id
//	8-11   priority
//	12-15  dst addr   16 dst len
//	17-20  src addr   21 src len
//	22     action
//	23-24  port
func encodeRuleEntry(b []byte, e RuleEntry) {
	binary.BigEndian.PutUint64(b[0:8], e.RuleID)
	binary.BigEndian.PutUint32(b[8:12], uint32(e.Priority))
	binary.BigEndian.PutUint32(b[12:16], e.DstAddr)
	b[16] = e.DstLen
	binary.BigEndian.PutUint32(b[17:21], e.SrcAddr)
	b[21] = e.SrcLen
	b[22] = e.Action
	binary.BigEndian.PutUint16(b[23:25], e.Port)
}

func decodeRuleEntry(b []byte) RuleEntry {
	return RuleEntry{
		RuleID:   binary.BigEndian.Uint64(b[0:8]),
		Priority: int32(binary.BigEndian.Uint32(b[8:12])),
		DstAddr:  binary.BigEndian.Uint32(b[12:16]),
		DstLen:   b[16],
		SrcAddr:  binary.BigEndian.Uint32(b[17:21]),
		SrcLen:   b[21],
		Action:   b[22],
		Port:     binary.BigEndian.Uint16(b[23:25]),
	}
}

// encodeFlowModFixed lays out the 28-byte flow-mod body:
//
//	0      command
//	1-3    pad
//	4-11   rule id
//	12-15  priority
//	16-19  dst addr   20 dst len
//	21-24  src addr   25 src len
//	26     action     27 pad
//	— port is packed into bytes 2-3 of the pad for compactness.
func encodeFlowModFixed(f *FlowMod) []byte {
	b := make([]byte, flowModLen)
	encodeFlowModInto(b, f)
	return b
}

// encodeFlowModInto writes the 28-byte layout into b (len(b) ≥ flowModLen),
// allocation-free so batch encoding can pack ops into one reused buffer.
func encodeFlowModInto(b []byte, f *FlowMod) {
	b[0] = byte(f.Command)
	b[1] = 0
	binary.BigEndian.PutUint16(b[2:4], f.Port)
	binary.BigEndian.PutUint64(b[4:12], f.RuleID)
	binary.BigEndian.PutUint32(b[12:16], uint32(f.Priority))
	binary.BigEndian.PutUint32(b[16:20], f.DstAddr)
	b[20] = f.DstLen
	binary.BigEndian.PutUint32(b[21:25], f.SrcAddr)
	b[25] = f.SrcLen
	b[26] = f.Action
	b[27] = 0
}

func decodeFlowModFixed(b []byte) (*FlowMod, error) {
	if len(b) < flowModLen {
		return nil, ErrTruncated
	}
	f := decodeFlowModValue(b)
	return &f, nil
}

// decodeFlowModValue decodes the 28-byte layout by value (no allocation);
// the caller guarantees len(b) ≥ flowModLen.
func decodeFlowModValue(b []byte) FlowMod {
	return FlowMod{
		Command:  FlowModCommand(b[0]),
		Port:     binary.BigEndian.Uint16(b[2:4]),
		RuleID:   binary.BigEndian.Uint64(b[4:12]),
		Priority: int32(binary.BigEndian.Uint32(b[12:16])),
		DstAddr:  binary.BigEndian.Uint32(b[16:20]),
		DstLen:   b[20],
		SrcAddr:  binary.BigEndian.Uint32(b[21:25]),
		SrcLen:   b[25],
		Action:   b[26],
	}
}

// encodeBatchReplyEntry lays out the 22-byte reply entry:
//
//	0-1    status code (0 = ok)
//	2-9    rule id
//	10-17  latency ns
//	18     path       19 guaranteed
//	20     violation  21 partitions
func encodeBatchReplyEntry(b []byte, e BatchReplyEntry) {
	binary.BigEndian.PutUint16(b[0:2], uint16(e.Code))
	binary.BigEndian.PutUint64(b[2:10], e.Reply.RuleID)
	binary.BigEndian.PutUint64(b[10:18], e.Reply.LatencyNS)
	b[18] = e.Reply.Path
	b[19] = boolByte(e.Reply.Guaranteed)
	b[20] = boolByte(e.Reply.Violation)
	b[21] = e.Reply.Partitions
}

func decodeBatchReplyEntry(b []byte) BatchReplyEntry {
	return BatchReplyEntry{
		Code: ErrorCode(binary.BigEndian.Uint16(b[0:2])),
		Reply: FlowModReply{
			RuleID:     binary.BigEndian.Uint64(b[2:10]),
			LatencyNS:  binary.BigEndian.Uint64(b[10:18]),
			Path:       b[18],
			Guaranteed: b[19] != 0,
			Violation:  b[20] != 0,
			Partitions: b[21],
		},
	}
}

// ReadMessage reads and decodes one frame.
func ReadMessage(r io.Reader) (*Message, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, hdr[0])
	}
	m := &Message{Header: Header{
		Version: hdr[0],
		Type:    MsgType(hdr[1]),
		Length:  binary.BigEndian.Uint16(hdr[2:4]),
		XID:     binary.BigEndian.Uint32(hdr[4:8]),
	}}
	if int(m.Header.Length) < headerLen {
		return nil, ErrTruncated
	}
	body := make([]byte, int(m.Header.Length)-headerLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrTruncated, err)
	}
	return m, decodeBody(m, body)
}

func decodeBody(m *Message, body []byte) error {
	switch m.Header.Type {
	case TypeHello, TypeBarrierRequest, TypeBarrierReply, TypeStatsRequest:
		return nil
	case TypeEchoRequest, TypeEchoReply:
		m.Raw = body
		return nil
	case TypeFlowMod:
		f, err := decodeFlowModFixed(body)
		m.FlowMod = f
		return err
	case TypeFlowModReply:
		if len(body) < flowModReplyLen {
			return ErrTruncated
		}
		m.FlowModReply = &FlowModReply{
			RuleID:     binary.BigEndian.Uint64(body[0:8]),
			LatencyNS:  binary.BigEndian.Uint64(body[8:16]),
			Path:       body[16],
			Guaranteed: body[17] != 0,
			Violation:  body[18] != 0,
			Partitions: body[19],
		}
		return nil
	case TypeStatsReply:
		if len(body) < statsLen+8 {
			return ErrTruncated
		}
		m.Stats = &Stats{
			Inserts:       binary.BigEndian.Uint64(body[0:8]),
			ShadowInserts: binary.BigEndian.Uint64(body[8:16]),
			MainInserts:   binary.BigEndian.Uint64(body[16:24]),
			Bypasses:      binary.BigEndian.Uint64(body[24:32]),
			Violations:    binary.BigEndian.Uint64(body[32:40]),
			Migrations:    binary.BigEndian.Uint64(body[40:48]),
			ShadowOcc:     binary.BigEndian.Uint32(body[48:52]),
			MainOcc:       binary.BigEndian.Uint32(body[52:56]),
			ShadowSize:    binary.BigEndian.Uint32(body[56:60]),
			OverheadPPM:   binary.BigEndian.Uint32(body[60:64]),
			MaxRateMilli:  binary.BigEndian.Uint64(body[64:72]),
		}
		return nil
	case TypeQoSRequest:
		if len(body) < qosRequestLen {
			return ErrTruncated
		}
		m.QoSRequest = &QoSRequest{GuaranteeNS: binary.BigEndian.Uint64(body)}
		return nil
	case TypeQoSReply:
		if len(body) < qosReplyLen {
			return ErrTruncated
		}
		m.QoSReply = &QoSReply{
			ShadowEntries: binary.BigEndian.Uint32(body[0:4]),
			OverheadPPM:   binary.BigEndian.Uint32(body[4:8]),
			MaxRateMilli:  binary.BigEndian.Uint64(body[8:16]),
			GuaranteeNS:   binary.BigEndian.Uint64(body[16:24]),
		}
		return nil
	case TypeError:
		if len(body) < errorFixedLen {
			return ErrTruncated
		}
		m.Error = &ErrorBody{
			Code:   ErrorCode(binary.BigEndian.Uint16(body[0:2])),
			Reason: string(body[2:]),
		}
		return nil
	case TypeFlowModBatch:
		if len(body) < batchFixedLen {
			return ErrTruncated
		}
		n := int(binary.BigEndian.Uint16(body[0:2]))
		if len(body) < batchFixedLen+n*flowModLen {
			return ErrTruncated
		}
		fb := &FlowModBatch{}
		if n > 0 {
			fb.Ops = make([]FlowMod, n)
			for i := range fb.Ops {
				fb.Ops[i] = decodeFlowModValue(body[batchFixedLen+i*flowModLen:])
			}
		}
		m.FlowModBatch = fb
		return nil
	case TypeFlowModBatchReply:
		if len(body) < batchFixedLen {
			return ErrTruncated
		}
		n := int(binary.BigEndian.Uint16(body[0:2]))
		if len(body) < batchFixedLen+n*batchReplyEntryLen {
			return ErrTruncated
		}
		fb := &FlowModBatchReply{}
		if n > 0 {
			fb.Entries = make([]BatchReplyEntry, n)
			for i := range fb.Entries {
				fb.Entries[i] = decodeBatchReplyEntry(body[batchFixedLen+i*batchReplyEntryLen:])
			}
		}
		m.FlowModBatchReply = fb
		return nil
	case TypeRulesRequest:
		if len(body) < rulesRequestLen {
			return ErrTruncated
		}
		m.RulesRequest = &RulesRequest{
			After: binary.BigEndian.Uint64(body[0:8]),
			Max:   binary.BigEndian.Uint16(body[8:10]),
		}
		return nil
	case TypeRulesReply:
		if len(body) < rulesReplyFixedLen+1 {
			return ErrTruncated
		}
		n := int(binary.BigEndian.Uint16(body[0:2]))
		if len(body) < rulesReplyFixedLen+1+n*ruleEntryLen {
			return ErrTruncated
		}
		q := &RulesReply{More: body[2] != 0}
		if n > 0 {
			q.Rules = make([]RuleEntry, n)
			for i := range q.Rules {
				q.Rules[i] = decodeRuleEntry(body[rulesReplyFixedLen+1+i*ruleEntryLen:])
			}
		}
		m.RulesReply = q
		return nil
	default:
		return fmt.Errorf("%w: %d", ErrBadType, m.Header.Type)
	}
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// clampU16 saturates v into a 16-bit wire field. Values that exceed a
// field's range must saturate, never wrap — wrapping is the defect class
// behind the 64KiB frame-length bug.
func clampU16(v int) uint16 {
	if v < 0 {
		return 0
	}
	if v > 0xFFFF {
		return 0xFFFF
	}
	return uint16(v)
}

// clampU8 saturates v into an 8-bit wire field.
func clampU8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 0xFF {
		return 0xFF
	}
	return uint8(v)
}
