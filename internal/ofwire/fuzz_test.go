package ofwire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
)

// frame encodes m for use as a fuzz seed, failing the seed setup loudly if
// the message is unencodable.
func frame(f *testing.F, m *Message) []byte {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		f.Fatalf("seed frame: %v", err)
	}
	return buf.Bytes()
}

// FuzzCodecRoundTrip drives the codec with arbitrary bytes from two
// directions:
//
//   - decode: ReadMessage must never panic on hostile input, and any frame
//     it accepts must survive encode→decode with identical semantics;
//   - encode: an echo payload of any size must either round-trip exactly
//     or be rejected with ErrTooLarge — re-covering the uint16
//     length-wrap regression at exactly 64KiB frames fixed in PR 1.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(frame(f, &Message{Header: Header{Type: TypeHello}}))
	f.Add(frame(f, &Message{Header: Header{Type: TypeEchoRequest, XID: 7}, Raw: []byte("ping")}))
	f.Add(frame(f, &Message{Header: Header{Type: TypeFlowMod, XID: 1}, FlowMod: &FlowMod{
		Command: FlowAdd, RuleID: 42, Priority: 9, DstAddr: 0x0a000000, DstLen: 8,
		SrcAddr: 0xc0a80000, SrcLen: 16, Action: 1, Port: 3,
	}}))
	f.Add(frame(f, &Message{Header: Header{Type: TypeFlowModReply, XID: 2}, FlowModReply: &FlowModReply{
		RuleID: 42, LatencyNS: 1e6, Path: 1, Guaranteed: true, Partitions: 3,
	}}))
	f.Add(frame(f, &Message{Header: Header{Type: TypeStatsReply, XID: 3}, Stats: &Stats{
		Inserts: 10, ShadowOcc: 4, MaxRateMilli: 1500,
	}}))
	f.Add(frame(f, &Message{Header: Header{Type: TypeQoSRequest, XID: 4}, QoSRequest: &QoSRequest{GuaranteeNS: 5e6}}))
	f.Add(frame(f, &Message{Header: Header{Type: TypeQoSReply, XID: 5}, QoSReply: &QoSReply{ShadowEntries: 100}}))
	f.Add(frame(f, &Message{Header: Header{Type: TypeError, XID: 6}, Error: &ErrorBody{
		Code: ErrCodeTableFull, Reason: "full",
	}}))
	f.Add(frame(f, &Message{Header: Header{Type: TypeFlowModBatch, XID: 8}, FlowModBatch: &FlowModBatch{
		Ops: []FlowMod{
			{Command: FlowAdd, RuleID: 1, Priority: 5, DstAddr: 0x0a000000, DstLen: 8, Action: 1},
			{Command: FlowDelete, RuleID: 2},
		},
	}}))
	f.Add(frame(f, &Message{Header: Header{Type: TypeFlowModBatchReply, XID: 8}, FlowModBatchReply: &FlowModBatchReply{
		Entries: []BatchReplyEntry{
			{Reply: FlowModReply{RuleID: 1, LatencyNS: 1e6, Guaranteed: true, Partitions: 1}},
			{Code: ErrCodeDuplicateRule, Reply: FlowModReply{RuleID: 2}},
		},
	}}))
	// The 64KiB batch boundary regression: the largest batch that fits one
	// frame. One op more is unencodable (ErrTooLarge) and must be split by
	// the client before it reaches the codec.
	full := &FlowModBatch{Ops: make([]FlowMod, MaxBatchOps)}
	for i := range full.Ops {
		full.Ops[i] = FlowMod{Command: FlowAdd, RuleID: uint64(i), Priority: int32(i % 7)}
	}
	f.Add(frame(f, &Message{Header: Header{Type: TypeFlowModBatch, XID: 10}, FlowModBatch: full}))
	// Truncated and length-corrupted headers.
	f.Add([]byte{Version, byte(TypeHello), 0, 0, 0, 0, 0, 1})
	corrupt := frame(f, &Message{Header: Header{Type: TypeEchoRequest}, Raw: []byte("abcd")})
	binary.BigEndian.PutUint16(corrupt[2:4], 9) // lie about the length
	f.Add(corrupt)
	// The 64KiB wrap regression: the largest rejected payload and the
	// largest accepted one.
	f.Add(make([]byte, MaxMessageLen-headerLen))
	f.Add(make([]byte, MaxMessageLen-headerLen-1))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: arbitrary bytes through the decoder.
		m, err := ReadMessage(bytes.NewReader(data))
		if err == nil {
			var buf bytes.Buffer
			if werr := WriteMessage(&buf, m); werr != nil {
				t.Fatalf("decoded frame did not re-encode: %v", werr)
			}
			m2, rerr := ReadMessage(&buf)
			if rerr != nil {
				t.Fatalf("re-encoded frame did not decode: %v", rerr)
			}
			assertSameMessage(t, m, m2)
		}

		// Direction 2: arbitrary payload through the encoder.
		echo := &Message{Header: Header{Type: TypeEchoRequest, XID: 99}, Raw: data}
		var buf bytes.Buffer
		werr := WriteMessage(&buf, echo)
		if headerLen+len(data) >= MaxMessageLen {
			if !errors.Is(werr, ErrTooLarge) {
				t.Fatalf("oversized frame (%d bytes) encoded with err=%v; length field would wrap",
					headerLen+len(data), werr)
			}
			return
		}
		if werr != nil {
			t.Fatalf("encodable frame rejected: %v", werr)
		}
		if got := buf.Len(); got != headerLen+len(data) {
			t.Fatalf("frame length %d, want %d", got, headerLen+len(data))
		}
		back, rerr := ReadMessage(&buf)
		if rerr != nil {
			t.Fatalf("encoded echo did not decode: %v", rerr)
		}
		if !bytes.Equal(back.Raw, data) {
			t.Fatalf("echo payload corrupted: got %d bytes, want %d", len(back.Raw), len(data))
		}
	})
}

// assertSameMessage compares everything a peer can observe: type, XID and
// the decoded body. Header.Length is excluded — the decoder tolerates
// oversized bodies, so re-encoding may produce a shorter canonical frame.
func assertSameMessage(t *testing.T, a, b *Message) {
	t.Helper()
	if a.Header.Type != b.Header.Type || a.Header.XID != b.Header.XID {
		t.Fatalf("header changed: %+v vs %+v", a.Header, b.Header)
	}
	normalize := func(m *Message) *Message {
		c := *m
		c.Header.Length = 0
		if len(c.Raw) == 0 {
			c.Raw = nil
		}
		return &c
	}
	if !reflect.DeepEqual(normalize(a), normalize(b)) {
		t.Fatalf("round trip changed message:\n first: %+v\nsecond: %+v", a, b)
	}
}
