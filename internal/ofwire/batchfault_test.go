package ofwire

import (
	"net"
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/faultinject"
	"hermes/internal/tcam"
)

// writeFaultConn routes writes through a faultinject-wrapped view of the
// connection while reads bypass the plan. The client and server read loops
// block in Read between frames (consuming fault decisions at unpredictable
// instants), so write-only injection is what makes a scripted schedule
// line up with specific frames: op k in the script is exactly the k-th
// frame written on this connection.
type writeFaultConn struct {
	net.Conn
	faulty net.Conn
}

func (c writeFaultConn) Write(b []byte) (int, error) { return c.faulty.Write(b) }

// faultyWriteListener wraps accepted server connections the same way.
type faultyWriteListener struct {
	net.Listener
	wire *faultinject.Wire
}

func (l faultyWriteListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return writeFaultConn{Conn: c, faulty: l.wire.Wrap(c)}, nil
}

// TestBatchPartialWriteAppliesNothing: a connection crash mid-batch-frame
// must be atomic from the switch's perspective. The server only applies a
// batch after decoding the complete frame, so a write cut partway through
// the ops vector installs zero rules — there is no torn prefix of the
// batch left behind on the switch.
func TestBatchPartialWriteAppliesNothing(t *testing.T) {
	_, addr := startServer(t, core.Config{DisableRateLimit: true})

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Client write ops: [0] the hello reply, [1] the batch frame — cut at
	// 60%, well past the header and into the ops vector.
	wire := faultinject.NewWire(faultinject.WireConfig{Script: []faultinject.WireFault{
		{},
		{PartialFrac: 0.6},
	}})
	c, err := NewClient(writeFaultConn{Conn: raw, faulty: wire.Wrap(raw)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rules := make([]classifier.Rule, 200)
	for i := range rules {
		rules[i] = batchRule(i)
	}
	_, err = c.InsertBatch(rules)
	if err == nil {
		t.Fatal("batch survived a mid-frame connection crash")
	}
	if got := wire.Counts().Partials; got != 1 {
		t.Fatalf("injected partials = %d, want 1", got)
	}

	// A fresh connection sees the atomicity contract: nothing applied.
	verify, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer verify.Close()
	st, err := verify.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Inserts != 0 || st.ShadowOcc+st.MainOcc != 0 {
		t.Fatalf("torn batch applied: inserts=%d occupancy=%d",
			st.Inserts, st.ShadowOcc+st.MainOcc)
	}
}

// TestBatchResetBetweenSendAndReply: the reply-side reset is the ambiguous
// failure — the batch frame arrived intact and the switch applied every
// op, but the connection died before the reply reached the controller. The
// client must surface an error (it cannot know), and the switch must hold
// the applied state; resolving the ambiguity is the fleet resync's job.
func TestBatchResetBetweenSendAndReply(t *testing.T) {
	srv, err := NewAgentServer("tor-reset", tcam.Pica8P3290,
		core.Config{Guarantee: 5 * time.Millisecond, DisableRateLimit: true})
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = t.Logf
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Server write ops on the first connection: [0] hello, [1] the batch
	// reply — reset instead of delivering it.
	wire := faultinject.NewWire(faultinject.WireConfig{Script: []faultinject.WireFault{
		{},
		{Reset: true},
	}})
	go srv.Serve(faultyWriteListener{Listener: lis, wire: wire}) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })

	c, err := Dial(lis.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRequestTimeout(2 * time.Second)

	rules := make([]classifier.Rule, 50)
	for i := range rules {
		rules[i] = batchRule(i)
	}
	if _, err := c.InsertBatch(rules); err == nil {
		t.Fatal("client observed success though the reply was reset away")
	}
	if got := wire.Counts().Resets; got != 1 {
		t.Fatalf("injected resets = %d, want 1", got)
	}

	// The switch applied the whole batch before the reply write failed:
	// the script is exhausted, so the verification connection is clean.
	verify, err := Dial(lis.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer verify.Close()
	st, err := verify.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Inserts != uint64(len(rules)) || st.ShadowOcc+st.MainOcc != uint32(len(rules)) {
		t.Fatalf("applied state lost: inserts=%d occupancy=%d, want %d",
			st.Inserts, st.ShadowOcc+st.MainOcc, len(rules))
	}
	// The applied rules are live and owned: deleting them succeeds, which
	// is exactly how a resync would reconcile the ambiguity.
	for _, r := range rules {
		if _, err := verify.Delete(r.ID); err != nil {
			t.Fatalf("delete %d after ambiguous batch: %v", r.ID, err)
		}
	}
}
