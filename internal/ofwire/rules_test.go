package ofwire

import (
	"context"
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
)

func testRule(i int) classifier.Rule {
	return classifier.Rule{
		ID:       classifier.RuleID(i + 1),
		Match:    classifier.DstMatch(classifier.NewPrefix(uint32(i)<<12|0x0A000000, 28)),
		Priority: int32(i%17 + 1),
		Action:   classifier.Action{Type: classifier.ActionForward, Port: i % 48},
	}
}

// TestDumpRulesEndToEnd: rules inserted over the wire come back from
// DumpRules byte-for-byte, sorted by ID, and multi-page dumps stitch
// together without loss or duplication.
func TestDumpRulesEndToEnd(t *testing.T) {
	srv, addr := startServer(t, core.Config{DisableRateLimit: true})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 40
	want := make([]classifier.Rule, n)
	for i := 0; i < n; i++ {
		want[i] = testRule(i)
		if _, err := c.Insert(want[i]); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}

	check := func(got []classifier.Rule, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("dump returned %d rules, want %d", len(got), n)
		}
		for i, r := range got {
			if r != want[i] {
				t.Fatalf("rule %d mismatch:\n got %+v\nwant %+v", i, r, want[i])
			}
		}
	}
	// Single page (agent-chosen frame-bound page size).
	check(c.DumpRules())
	// Forced multi-page dump: 7-entry pages over 40 rules.
	check(c.dumpRulesPaged(context.Background(), 7))

	// The dump reflects deletions.
	if _, err := c.Delete(want[3].ID); err != nil {
		t.Fatal(err)
	}
	got, err := c.DumpRules()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n-1 {
		t.Fatalf("post-delete dump returned %d rules, want %d", len(got), n-1)
	}
	for _, r := range got {
		if r.ID == want[3].ID {
			t.Fatalf("deleted rule %d still in dump", r.ID)
		}
	}
	_ = srv
}

// TestDumpRulesEmpty: a fresh agent dumps an empty, non-erroring rule set.
func TestDumpRulesEmpty(t *testing.T) {
	_, addr := startServer(t, core.Config{DisableRateLimit: true})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.DumpRules()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty agent dumped %d rules", len(got))
	}
}

// TestDoRulesPagination: the server-side pager honors cursors and Max,
// never repeats an ID, and flags continuation exactly when entries remain.
func TestDoRulesPagination(t *testing.T) {
	srv, addr := startServer(t, core.Config{DisableRateLimit: true})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 25
	for i := 0; i < n; i++ {
		if _, err := c.Insert(testRule(i)); err != nil {
			t.Fatal(err)
		}
	}
	var after uint64
	seen := map[uint64]bool{}
	pages := 0
	for {
		resp := srv.doRules(&Message{
			Header:       Header{Type: TypeRulesRequest},
			RulesRequest: &RulesRequest{After: after, Max: 10},
		})
		if resp.RulesReply == nil {
			t.Fatalf("page %d: no rules reply: %+v", pages, resp)
		}
		rr := resp.RulesReply
		if len(rr.Rules) > 10 {
			t.Fatalf("page %d: %d entries above Max", pages, len(rr.Rules))
		}
		for _, e := range rr.Rules {
			if e.RuleID <= after {
				t.Fatalf("page %d: entry %d at or below cursor %d", pages, e.RuleID, after)
			}
			if seen[e.RuleID] {
				t.Fatalf("page %d: duplicate entry %d", pages, e.RuleID)
			}
			seen[e.RuleID] = true
			after = e.RuleID
		}
		pages++
		if !rr.More {
			break
		}
	}
	if len(seen) != n {
		t.Fatalf("pagination returned %d unique rules, want %d", len(seen), n)
	}
	if want := (n + 9) / 10; pages != want {
		t.Fatalf("dump took %d pages, want %d", pages, want)
	}
}
