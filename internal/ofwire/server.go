package ofwire

import (
	"errors"
	"io"
	"log"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/obs"
	"hermes/internal/tcam"
)

// AgentServer is the switch-resident daemon: it terminates control
// channels, maps wall-clock time onto the agent's virtual clock, applies
// flow-mods, runs the Rule Manager tick loop, and answers the Hermes QoS
// extension. It corresponds to the "Hermes Agent" box of Fig. 2.
//
// The embedded core.Agent is single-threaded by design; the server
// serializes all access behind one mutex, which also matches the single
// switch-CPU deployment the paper targets.
type AgentServer struct {
	profile *tcam.Profile
	cfg     core.Config

	mu    sync.Mutex
	sw    *tcam.Switch
	agent *core.Agent
	start time.Time

	lis    net.Listener
	wg     sync.WaitGroup
	closed chan struct{}

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	// drainAt, when non-zero, is the Shutdown deadline; connections
	// registered after it starts inherit the deadline immediately.
	drainAt time.Time

	// Logf receives connection-level errors; defaults to log.Printf.
	Logf func(format string, args ...interface{})
}

// NewAgentServer builds the daemon for one modeled switch.
func NewAgentServer(name string, profile *tcam.Profile, cfg core.Config) (*AgentServer, error) {
	sw := tcam.NewSwitch(name, profile)
	agent, err := core.New(sw, cfg)
	if err != nil {
		return nil, err
	}
	return &AgentServer{
		profile: profile,
		cfg:     cfg,
		sw:      sw,
		agent:   agent,
		start:   time.Now(),
		closed:  make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
		Logf:    log.Printf,
	}, nil
}

// Agent exposes the wrapped agent (tests and stats).
func (s *AgentServer) Agent() *core.Agent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.agent
}

// MetricsSnapshot returns a deep copy of the agent's metrics taken under
// the server lock, safe to read while the server keeps serving.
func (s *AgentServer) MetricsSnapshot() core.Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.agent.Metrics().Snapshot()
}

// RegisterObs exposes the daemon on an obs registry: the agent's always-on
// counters, table occupancy, and the server's open-connection count, all as
// scrape-time closures. Closures read through s.agent under the server lock,
// so they stay correct when a QoS re-carve replaces the agent. The per-op
// latency histograms and the flight recorder are the Observer's job — pass
// core.NewObserver(reg, ...) in the core.Config instead; this method covers
// the state that exists even with a nil Observer.
func (s *AgentServer) RegisterObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	counters := func(pick func(core.Metrics) int) func() uint64 {
		return func() uint64 {
			s.mu.Lock()
			m := s.agent.Metrics() // cheap counter copy; histograms untouched
			s.mu.Unlock()
			return uint64(pick(m))
		}
	}
	reg.CounterFunc("hermes_agent_inserts_total", "",
		"controller-issued insertions", counters(func(m core.Metrics) int { return m.Inserts }))
	reg.CounterFunc("hermes_agent_shadow_inserts_total", "",
		"insertions on the guaranteed shadow path", counters(func(m core.Metrics) int { return m.ShadowInserts }))
	reg.CounterFunc("hermes_agent_main_inserts_total", "",
		"insertions on the unguaranteed main path", counters(func(m core.Metrics) int { return m.MainInserts }))
	reg.CounterFunc("hermes_agent_bypasses_total", "",
		"lowest-priority bypass appends", counters(func(m core.Metrics) int { return m.Bypasses }))
	reg.CounterFunc("hermes_agent_rate_limited_total", "",
		"insertions diverted by the token bucket", counters(func(m core.Metrics) int { return m.RateLimited }))
	reg.CounterFunc("hermes_agent_violations_total", "",
		"guaranteed insertions past the bound", counters(func(m core.Metrics) int { return m.Violations }))
	reg.CounterFunc("hermes_agent_migrations_total", "",
		"Rule Manager migrations completed", counters(func(m core.Metrics) int { return m.Migrations }))
	reg.CounterFunc("hermes_agent_reconciles_total", "",
		"reconcile passes after crash recovery", counters(func(m core.Metrics) int { return m.Reconciles }))

	occ := func(pick func(*core.Agent) int) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(pick(s.agent))
		}
	}
	reg.GaugeFunc("hermes_tcam_occupancy", obs.Labels("table", "shadow"),
		"physical entries installed", occ((*core.Agent).ShadowOccupancy))
	reg.GaugeFunc("hermes_tcam_occupancy", obs.Labels("table", "main"),
		"physical entries installed", occ((*core.Agent).MainOccupancy))
	reg.GaugeFunc("hermes_tcam_capacity", obs.Labels("table", "shadow"),
		"entries the carved slice can hold", occ((*core.Agent).ShadowSize))
	reg.GaugeFunc("hermes_ofwire_open_conns", "",
		"live control channels", func() float64 {
			s.connMu.Lock()
			defer s.connMu.Unlock()
			return float64(len(s.conns))
		})
}

// now maps wall time to the agent's virtual clock.
func (s *AgentServer) now() time.Duration { return time.Since(s.start) }

// Serve accepts control connections on lis until Close. It also drives the
// Rule Manager tick loop at the configured interval.
func (s *AgentServer) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()

	// Rule Manager tick loop.
	tick := s.cfg.TickInterval
	if tick <= 0 {
		tick = 10 * time.Millisecond
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-s.closed:
				return
			case <-t.C:
				s.mu.Lock()
				s.agent.Tick(s.now())
				s.mu.Unlock()
			}
		}
	}()

	for {
		conn, err := lis.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil
			default:
				return err
			}
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		if !s.drainAt.IsZero() {
			conn.SetDeadline(s.drainAt)
		}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			err := s.handle(conn)
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
			if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) &&
				!errors.Is(err, os.ErrDeadlineExceeded) {
				s.Logf("ofwire: connection %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// Close stops the server and waits for connection handlers to finish.
func (s *AgentServer) Close() error {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	s.mu.Lock()
	lis := s.lis
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	// Force-close live control channels so handlers (blocked in
	// ReadMessage) terminate; a killed agent must drop its connections,
	// not leave peers hanging.
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}

// Shutdown stops the server gracefully: it stops accepting, lets every
// in-flight request finish and its reply flush, and gives idle connections
// until the drain deadline to wind down. Handlers parked in a blocked read
// wake at the deadline via the connection deadline; whatever still runs
// after a grace period beyond it is force-closed, so Shutdown returns in
// bounded time regardless of peer behavior. Safe to call repeatedly and
// concurrently with Close.
func (s *AgentServer) Shutdown(drain time.Duration) error {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	s.mu.Lock()
	lis := s.lis
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}

	deadline := time.Now().Add(drain)
	s.connMu.Lock()
	s.drainAt = deadline
	for conn := range s.conns {
		// Both directions: a blocked read wakes at the deadline, and a
		// write to a stalled peer cannot pin the drain open.
		conn.SetDeadline(deadline)
	}
	s.connMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(drain + 100*time.Millisecond):
		// Deadlines should have unblocked everything; if a handler is
		// still alive the connection gets cut, exactly like Close.
		s.connMu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.connMu.Unlock()
		<-done
	}
	return err
}

// handle runs one control connection: hello exchange, then a
// request/response loop.
func (s *AgentServer) handle(conn net.Conn) error {
	defer conn.Close()
	// Hello exchange: server speaks first, client must answer.
	if err := WriteMessage(conn, &Message{Header: Header{Type: TypeHello}}); err != nil {
		return err
	}
	first, err := ReadMessage(conn)
	if err != nil {
		return err
	}
	if first.Header.Type != TypeHello {
		return errors.New("ofwire: peer did not hello")
	}
	for {
		req, err := ReadMessage(conn)
		if err != nil {
			return err
		}
		resp := s.dispatch(req)
		if resp == nil {
			continue
		}
		resp.Header.XID = req.Header.XID
		if err := WriteMessage(conn, resp); err != nil {
			return err
		}
	}
}

// dispatch executes one request against the agent and builds the reply.
func (s *AgentServer) dispatch(req *Message) *Message {
	switch req.Header.Type {
	case TypeEchoRequest:
		return &Message{Header: Header{Type: TypeEchoReply}, Raw: req.Raw}
	case TypeBarrierRequest:
		// All processing is synchronous under the lock; reaching here
		// means every prior flow-mod on this channel is complete.
		return &Message{Header: Header{Type: TypeBarrierReply}}
	case TypeFlowMod:
		return s.doFlowMod(req)
	case TypeFlowModBatch:
		return s.doFlowModBatch(req)
	case TypeStatsRequest:
		return s.doStats()
	case TypeQoSRequest:
		return s.doQoS(req)
	case TypeRulesRequest:
		return s.doRules(req)
	case TypeHello:
		return nil // tolerated mid-stream
	default:
		return errorMsg(ErrCodeBadRequest, "unexpected "+req.Header.Type.String())
	}
}

func (s *AgentServer) doFlowMod(req *Message) *Message {
	if req.FlowMod == nil {
		return errorMsg(ErrCodeBadRequest, "empty flow-mod")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	rule := req.FlowMod.Rule()
	var res core.Result
	var err error
	switch req.FlowMod.Command {
	case FlowAdd:
		res, err = s.agent.Insert(now, rule)
	case FlowDelete:
		res, err = s.agent.Delete(now, rule.ID)
	case FlowModify:
		res, err = s.agent.Modify(now, rule)
	default:
		return errorMsg(ErrCodeBadRequest, "unknown flow-mod command")
	}
	if err != nil {
		return errorMsg(errCodeFor(err), err.Error())
	}
	return &Message{
		Header: Header{Type: TypeFlowModReply},
		FlowModReply: &FlowModReply{
			RuleID:     req.FlowMod.RuleID,
			LatencyNS:  uint64(res.Latency),
			Path:       clampU8(int(res.Path)),
			Guaranteed: res.Guaranteed,
			Violation:  res.Violation,
			Partitions: clampU8(res.Partitions),
		},
	}
}

func (s *AgentServer) doStats() *Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.agent.Metrics()
	return &Message{
		Header: Header{Type: TypeStatsReply},
		Stats: &Stats{
			Inserts:       uint64(m.Inserts),
			ShadowInserts: uint64(m.ShadowInserts),
			MainInserts:   uint64(m.MainInserts),
			Bypasses:      uint64(m.Bypasses),
			Violations:    uint64(m.Violations),
			Migrations:    uint64(m.Migrations),
			ShadowOcc:     uint32(s.agent.ShadowOccupancy()),
			MainOcc:       uint32(s.agent.MainOccupancy()),
			ShadowSize:    uint32(s.agent.ShadowSize()),
			OverheadPPM:   uint32(s.agent.OverheadFraction() * 1e6),
			MaxRateMilli:  uint64(s.agent.MaxRate() * 1e3),
		},
	}
}

// doRules serves one page of the multipart rules dump: the agent's
// controller-visible rules with IDs above the request's cursor, in ID
// order. The page size is the smaller of the request's Max and the frame
// bound; More tells the client to come back with the last ID as the new
// cursor.
func (s *AgentServer) doRules(req *Message) *Message {
	if req.RulesRequest == nil {
		return errorMsg(ErrCodeBadRequest, "empty rules-request")
	}
	max := int(req.RulesRequest.Max)
	if max <= 0 || max > MaxRuleEntries {
		max = MaxRuleEntries
	}
	after := classifier.RuleID(req.RulesRequest.After)
	s.mu.Lock()
	rules := s.agent.Rules() // sorted by ID
	s.mu.Unlock()
	// Skip to the first ID past the cursor (rules is ID-sorted).
	lo := sort.Search(len(rules), func(i int) bool { return rules[i].ID > after })
	rules = rules[lo:]
	reply := &RulesReply{}
	if len(rules) > max {
		reply.More = true
		rules = rules[:max]
	}
	reply.Rules = make([]RuleEntry, len(rules))
	for i, r := range rules {
		reply.Rules[i] = EntryFromRule(r)
	}
	return &Message{Header: Header{Type: TypeRulesReply}, RulesReply: reply}
}

// doQoS re-carves the switch for a new guarantee — ModQoSConfig over the
// wire. Installed rules are discarded, as on hardware.
func (s *AgentServer) doQoS(req *Message) *Message {
	if req.QoSRequest == nil {
		return errorMsg(ErrCodeBadRequest, "empty qos-request")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg := s.cfg
	cfg.Guarantee = req.QoSRequest.Guarantee()
	s.sw.Uncarve()
	agent, err := core.New(s.sw, cfg)
	if err != nil {
		// Restore the previous configuration.
		s.sw.Uncarve()
		if prev, err2 := core.New(s.sw, s.cfg); err2 == nil {
			s.agent = prev
		}
		return errorMsg(ErrCodeQoSInfeasible, err.Error())
	}
	s.cfg = cfg
	s.agent = agent
	return &Message{
		Header: Header{Type: TypeQoSReply},
		QoSReply: &QoSReply{
			ShadowEntries: uint32(agent.ShadowSize()),
			OverheadPPM:   uint32(agent.OverheadFraction() * 1e6),
			MaxRateMilli:  uint64(agent.MaxRate() * 1e3),
			GuaranteeNS:   uint64(cfg.Guarantee),
		},
	}
}

func errorMsg(code ErrorCode, reason string) *Message {
	if len(reason) > 512 {
		reason = reason[:512]
	}
	return &Message{Header: Header{Type: TypeError}, Error: &ErrorBody{Code: code, Reason: reason}}
}

func errCodeFor(err error) ErrorCode {
	switch {
	case errors.Is(err, core.ErrUnknownRule):
		return ErrCodeUnknownRule
	case errors.Is(err, core.ErrDuplicateRule):
		return ErrCodeDuplicateRule
	case errors.Is(err, tcam.ErrTableFull):
		return ErrCodeTableFull
	default:
		return ErrCodeInternal
	}
}
