package ofwire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"testing"
	"testing/quick"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/tcam"
	"hermes/internal/testutil"
)

func roundTripMsg(t *testing.T, m *Message) *Message {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return got
}

func TestCodecHelloAndBarrier(t *testing.T) {
	for _, typ := range []MsgType{TypeHello, TypeBarrierRequest, TypeBarrierReply, TypeStatsRequest} {
		m := &Message{Header: Header{Type: typ, XID: 42}}
		got := roundTripMsg(t, m)
		if got.Header.Type != typ || got.Header.XID != 42 {
			t.Errorf("%s: header mismatch %+v", typ, got.Header)
		}
	}
}

func TestCodecEchoPayload(t *testing.T) {
	m := &Message{Header: Header{Type: TypeEchoRequest, XID: 7}, Raw: []byte("ping!")}
	got := roundTripMsg(t, m)
	if string(got.Raw) != "ping!" {
		t.Errorf("payload = %q", got.Raw)
	}
}

func TestCodecFlowModRoundTrip(t *testing.T) {
	f := func(id uint64, prio int32, dst uint32, dlen uint8, src uint32, slen uint8, action uint8, port uint16) bool {
		dlen %= 33
		slen %= 33
		if action > 3 {
			action %= 4
		}
		in := &Message{Header: Header{Type: TypeFlowMod, XID: 1}, FlowMod: &FlowMod{
			Command: FlowAdd, RuleID: id, Priority: prio,
			DstAddr: dst & maskFor(dlen), DstLen: dlen,
			SrcAddr: src & maskFor(slen), SrcLen: slen,
			Action: action, Port: port,
		}}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, in); err != nil {
			return false
		}
		out, err := ReadMessage(&buf)
		if err != nil || out.FlowMod == nil {
			return false
		}
		return *out.FlowMod == *in.FlowMod
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func maskFor(l uint8) uint32 {
	if l == 0 {
		return 0
	}
	return ^uint32(0) << (32 - l)
}

func TestCodecStatsAndQoS(t *testing.T) {
	s := &Stats{
		Inserts: 1, ShadowInserts: 2, MainInserts: 3, Bypasses: 4,
		Violations: 5, Migrations: 6, ShadowOcc: 7, MainOcc: 8,
		ShadowSize: 9, OverheadPPM: 31415, MaxRateMilli: 1234567,
	}
	got := roundTripMsg(t, &Message{Header: Header{Type: TypeStatsReply}, Stats: s})
	if *got.Stats != *s {
		t.Errorf("stats = %+v", got.Stats)
	}
	q := &QoSReply{ShadowEntries: 129, OverheadPPM: 31000, MaxRateMilli: 1154000, GuaranteeNS: 5e6}
	got = roundTripMsg(t, &Message{Header: Header{Type: TypeQoSReply}, QoSReply: q})
	if *got.QoSReply != *q {
		t.Errorf("qos = %+v", got.QoSReply)
	}
	qr := &QoSRequest{GuaranteeNS: 5e6}
	got = roundTripMsg(t, &Message{Header: Header{Type: TypeQoSRequest}, QoSRequest: qr})
	if got.QoSRequest.Guarantee() != 5*time.Millisecond {
		t.Errorf("qos request = %+v", got.QoSRequest)
	}
}

func TestCodecError(t *testing.T) {
	e := &ErrorBody{Code: ErrCodeTableFull, Reason: "tcam: table full"}
	got := roundTripMsg(t, &Message{Header: Header{Type: TypeError}, Error: e})
	if got.Error.Code != e.Code || got.Error.Reason != e.Reason {
		t.Errorf("error = %+v", got.Error)
	}
	if got.Error.Error() == "" {
		t.Error("empty error string")
	}
}

func TestCodecRejectsBadFrames(t *testing.T) {
	// Bad version.
	raw := []byte{99, byte(TypeHello), 0, 8, 0, 0, 0, 1}
	if _, err := ReadMessage(bytes.NewReader(raw)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version err = %v", err)
	}
	// Truncated body.
	raw = []byte{Version, byte(TypeFlowMod), 0, 12, 0, 0, 0, 1, 1, 2, 3, 4}
	if _, err := ReadMessage(bytes.NewReader(raw)); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated err = %v", err)
	}
	// Length below header size.
	raw = []byte{Version, byte(TypeHello), 0, 4, 0, 0, 0, 1}
	if _, err := ReadMessage(bytes.NewReader(raw)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short length err = %v", err)
	}
	// Unknown type.
	raw = []byte{Version, 200, 0, 8, 0, 0, 0, 1}
	if _, err := ReadMessage(bytes.NewReader(raw)); !errors.Is(err, ErrBadType) {
		t.Errorf("bad type err = %v", err)
	}
	// EOF mid-header.
	if _, err := ReadMessage(bytes.NewReader([]byte{Version, 1})); err == nil {
		t.Error("mid-header EOF accepted")
	}
	// Writing an unknown type fails.
	if err := WriteMessage(io.Discard, &Message{Header: Header{Type: 250}}); err == nil {
		t.Error("unknown type written")
	}
	// Bodyless flow-mod fails.
	if err := WriteMessage(io.Discard, &Message{Header: Header{Type: TypeFlowMod}}); err == nil {
		t.Error("bodyless flow-mod written")
	}
}

func TestMsgTypeString(t *testing.T) {
	for typ := TypeHello; typ <= TypeRulesReply; typ++ {
		if typ.String() == "" {
			t.Errorf("type %d has empty string", typ)
		}
	}
	if MsgType(99).String() == "" {
		t.Error("unknown type string")
	}
}

// startServer launches an AgentServer on a loopback listener.
func startServer(t *testing.T, cfg core.Config) (*AgentServer, string) {
	t.Helper()
	// Armed before the server cleanup below so it runs after it (LIFO):
	// the tick loop, accept loop and every connection handler must be
	// gone once the server is closed.
	testutil.VerifyNoLeaks(t)
	if cfg.Guarantee == 0 {
		cfg.Guarantee = 5 * time.Millisecond
	}
	srv, err := NewAgentServer("tor-1", tcam.Pica8P3290, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = t.Logf
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return srv, lis.Addr().String()
}

func TestClientServerEndToEnd(t *testing.T) {
	srv, addr := startServer(t, core.Config{DisableRateLimit: true})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Echo.
	if got, err := c.Echo([]byte("hello")); err != nil || string(got) != "hello" {
		t.Fatalf("echo = %q, %v", got, err)
	}

	// Insert rules; verify guarantees end to end.
	for i := 0; i < 50; i++ {
		r := classifier.Rule{
			ID:       classifier.RuleID(i + 1),
			Match:    classifier.DstMatch(classifier.NewPrefix(uint32(i)<<16|0x0A000000, 24)),
			Priority: int32(i%10 + 1),
			Action:   classifier.Action{Type: classifier.ActionForward, Port: i % 48},
		}
		res, err := c.Insert(r)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if !res.Guaranteed {
			t.Fatalf("insert %d not guaranteed: %+v", i, res)
		}
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}

	// Stats reflect the inserts.
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Inserts != 50 {
		t.Errorf("stats inserts = %d", st.Inserts)
	}
	if st.ShadowSize == 0 || st.OverheadPPM == 0 {
		t.Errorf("stats = %+v", st)
	}

	// Duplicate insert surfaces the typed remote error.
	_, err = c.Insert(classifier.Rule{ID: 1, Match: classifier.DstMatch(classifier.MustParsePrefix("10.0.0.0/8"))})
	var remote *ErrorBody
	if !errors.As(err, &remote) || remote.Code != ErrCodeDuplicateRule {
		t.Errorf("duplicate err = %v", err)
	}

	// Delete and unknown-delete.
	if _, err := c.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete(9999); err == nil {
		t.Error("unknown delete succeeded")
	}

	// Modify.
	r := classifier.Rule{
		ID:       2,
		Match:    classifier.DstMatch(classifier.NewPrefix(1<<16|0x0A000000, 24)),
		Priority: 2,
		Action:   classifier.Action{Type: classifier.ActionDrop},
	}
	if _, err := c.Modify(r); err != nil {
		t.Fatalf("modify: %v", err)
	}
	got, ok := srv.Agent().Lookup(1<<16|0x0A000000|5, 0)
	if !ok || got.Action.Type != classifier.ActionDrop {
		t.Errorf("server-side rule after modify = %v, %v", got, ok)
	}
}

func TestClientServerQoSRenegotiation(t *testing.T) {
	_, addr := startServer(t, core.Config{DisableRateLimit: true})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rep, err := c.RequestQoS(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	tight := rep.ShadowEntries
	rep, err = c.RequestQoS(10 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ShadowEntries <= tight {
		t.Errorf("looser guarantee shadow %d not above tighter %d", rep.ShadowEntries, tight)
	}
	// Infeasible request surfaces the typed error and keeps the agent
	// alive.
	if _, err := c.RequestQoS(time.Nanosecond); err == nil {
		t.Error("infeasible QoS accepted")
	}
	if _, err := c.Echo([]byte("still-alive")); err != nil {
		t.Errorf("channel dead after QoS failure: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, addr := startServer(t, core.Config{DisableRateLimit: true})
	const clients = 4
	const perClient = 30
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		ci := ci
		go func() {
			c, err := Dial(addr, time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(ci)))
			for i := 0; i < perClient; i++ {
				r := classifier.Rule{
					ID:       classifier.RuleID(ci*1000 + i + 1),
					Match:    classifier.DstMatch(classifier.NewPrefix(rng.Uint32(), 24)),
					Priority: int32(rng.Intn(50) + 1),
					Action:   classifier.Action{Type: classifier.ActionForward, Port: i % 48},
				}
				if _, err := c.Insert(r); err != nil {
					errs <- err
					return
				}
			}
			errs <- c.Barrier()
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Agent().Metrics().Inserts; got != clients*perClient {
		t.Errorf("inserts = %d, want %d", got, clients*perClient)
	}
}

func TestServerRejectsNonHello(t *testing.T) {
	_, addr := startServer(t, core.Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Read server hello, then send garbage type first.
	if _, err := ReadMessage(conn); err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(conn, &Message{Header: Header{Type: TypeEchoRequest}}); err != nil {
		t.Fatal(err)
	}
	// Server closes the channel.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := ReadMessage(conn); err == nil {
		t.Error("server kept a channel that never helloed")
	}
}

// TestDecodeNeverPanics feeds random frames to the decoder: malformed
// input must produce errors, never panics.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(64)
		raw := make([]byte, n)
		rng.Read(raw)
		if n >= 1 && rng.Intn(2) == 0 {
			raw[0] = Version // exercise deeper paths half the time
		}
		if n >= 4 {
			// Keep the declared length plausible so body reads terminate.
			raw[2] = 0
			raw[3] = byte(8 + rng.Intn(56))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %x: %v", raw, r)
				}
			}()
			ReadMessage(bytes.NewReader(raw)) //nolint:errcheck
		}()
	}
}
