package ofwire

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/obs"
	"hermes/internal/testutil"
)

// recordingLifecycle is a FlowLifecycle that keeps an exact submitted /
// completed ledger, the way the loadgen tracker does. Totals are plain
// counters — XIDs are a per-connection namespace, so a ledger spanning a
// reconnect must not key its totals by XID (the replacement client reuses
// low XIDs). The per-XID map tracks only the current connection's
// still-open requests.
type recordingLifecycle struct {
	mu        sync.Mutex
	submitted int
	installed int
	rejected  int // typed remote errors: switch alive
	lost      int // wire failures / abandonment
	open      map[uint32]classifier.RuleID
}

func newRecordingLifecycle() *recordingLifecycle {
	return &recordingLifecycle{open: make(map[uint32]classifier.RuleID)}
}

func (l *recordingLifecycle) FlowSubmitted(xid uint32, id classifier.RuleID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.submitted++
	l.open[xid] = id
}

func (l *recordingLifecycle) FlowCompleted(xid uint32, id classifier.RuleID, res FlowModResult, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.open[xid]; !ok {
		// Completion for an XID that was never submitted (or completed
		// twice) would corrupt any ledger; surface it as a lost/installed
		// mismatch by not counting.
		return
	}
	delete(l.open, xid)
	switch {
	case err == nil:
		l.installed++
	default:
		var remote *ErrorBody
		if errors.As(err, &remote) {
			l.rejected++
		} else {
			l.lost++
		}
	}
}

func (l *recordingLifecycle) counts() (submitted, installed, rejected, lost int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.submitted, l.installed, l.rejected, l.lost
}

func flowRule(id classifier.RuleID) classifier.Rule {
	return classifier.Rule{
		ID:       id,
		Match:    classifier.DstMatch(classifier.NewPrefix(0x0A000000|uint32(id)<<8, 24)),
		Priority: 10,
		Action:   classifier.Action{Type: classifier.ActionForward, Port: 1},
	}
}

// TestLifecycleCompletesEveryXID drives a mix of successful inserts,
// rejected duplicates and deletes through a live server and checks exact
// submitted == completed conservation with the right classification.
func TestLifecycleCompletesEveryXID(t *testing.T) {
	_, addr := startServer(t, core.Config{DisableRateLimit: true})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	lc := newRecordingLifecycle()
	c.SetLifecycle(lc)

	const n = 50
	for i := 1; i <= n; i++ {
		if _, err := c.Insert(flowRule(classifier.RuleID(i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// Duplicates: remote typed errors, classified rejected, not lost.
	for i := 1; i <= 5; i++ {
		if _, err := c.Insert(flowRule(classifier.RuleID(i))); err == nil {
			t.Fatalf("duplicate insert %d unexpectedly succeeded", i)
		}
	}
	for i := 1; i <= n; i++ {
		if _, err := c.Delete(classifier.RuleID(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}

	sub, inst, rej, lost := lc.counts()
	if sub != 2*n+5 {
		t.Fatalf("submitted = %d, want %d", sub, 2*n+5)
	}
	if inst != 2*n || rej != 5 || lost != 0 {
		t.Fatalf("installed/rejected/lost = %d/%d/%d, want %d/5/0", inst, rej, lost, 2*n)
	}
	// Every submitted XID completed: no request is still open.
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if len(lc.open) != 0 {
		t.Fatalf("%d XIDs still open after all requests returned", len(lc.open))
	}
}

// TestLifecycleMidRunResetCountsInFlightAsLost is the reconnect-tracking
// contract: a scripted peer absorbs a batch of pipelined flow-mods and
// then resets the connection without replying. Every in-flight XID must
// complete exactly once with a wire error (lost) — never as installed —
// and a replacement client with the same instruments must keep recording
// into the same RTT histogram after the reattach.
func TestLifecycleMidRunResetCountsInFlightAsLost(t *testing.T) {
	const inflight = 8
	lc := newRecordingLifecycle()
	var inflightG obs.Gauge
	rtt := obs.NewHistogram()

	sawAll := make(chan struct{})
	c := fakePeer(t, func(conn net.Conn) error {
		// Absorb the whole batch, reply to none, then die mid-run.
		for i := 0; i < inflight; i++ {
			if _, err := ReadMessage(conn); err != nil {
				return err
			}
		}
		close(sawAll)
		return conn.Close()
	})
	c.Instrument(&inflightG, rtt)
	c.SetLifecycle(lc)

	var wg sync.WaitGroup
	succeeded := make(chan classifier.RuleID, inflight)
	for i := 1; i <= inflight; i++ {
		wg.Add(1)
		go func(id classifier.RuleID) {
			defer wg.Done()
			if _, err := c.Insert(flowRule(id)); err == nil {
				succeeded <- id
			}
		}(classifier.RuleID(i))
	}
	<-sawAll
	wg.Wait()
	close(succeeded)
	for id := range succeeded {
		t.Errorf("insert %d succeeded across a reset", id)
	}

	sub, inst, rej, lost := lc.counts()
	if sub != inflight || lost != inflight || inst != 0 || rej != 0 {
		t.Fatalf("submitted/installed/rejected/lost = %d/%d/%d/%d, want %d/0/0/%d",
			sub, inst, rej, lost, inflight, inflight)
	}
	if rtt.Count() != 0 {
		t.Fatalf("rtt recorded %d abandoned round trips", rtt.Count())
	}
	if inflightG.Value() != 0 {
		t.Fatalf("in-flight gauge = %d after drain, want 0", inflightG.Value())
	}

	// Reconnect: a fresh client (new connection, same instruments, same
	// ledger) must resume recording into the same histogram.
	testutil.VerifyNoLeaks(t)
	_, addr := startServer(t, core.Config{DisableRateLimit: true})
	c2, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.Instrument(&inflightG, rtt)
	c2.SetLifecycle(lc)

	const after = 10
	for i := 1; i <= after; i++ {
		if _, err := c2.Insert(flowRule(classifier.RuleID(100 + i))); err != nil {
			t.Fatalf("post-reconnect insert %d: %v", i, err)
		}
	}
	if rtt.Count() != after {
		t.Fatalf("rtt count after reattach = %d, want %d", rtt.Count(), after)
	}
	sub, inst, _, lost = lc.counts()
	if sub != inflight+after || inst != after || lost != inflight {
		t.Fatalf("post-reconnect ledger submitted/installed/lost = %d/%d/%d, want %d/%d/%d",
			sub, inst, lost, inflight+after, after, inflight)
	}
	if inflightG.Value() != 0 {
		t.Fatalf("in-flight gauge = %d at rest, want 0", inflightG.Value())
	}
}

// TestLifecycleAbandonedDeadlineIsLostNotInstalled: a request abandoned at
// its deadline (stalled switch) must complete as lost even though the
// connection stays healthy.
func TestLifecycleAbandonedDeadlineIsLostNotInstalled(t *testing.T) {
	release := make(chan struct{})
	c := fakePeer(t, func(conn net.Conn) error {
		if _, err := ReadMessage(conn); err != nil {
			return err
		}
		<-release // stall past the deadline; reply never comes
		return nil
	})
	defer close(release)
	lc := newRecordingLifecycle()
	c.SetLifecycle(lc)
	c.SetRequestTimeout(20 * time.Millisecond)

	if _, err := c.Insert(flowRule(1)); err == nil {
		t.Fatal("stalled insert unexpectedly succeeded")
	}
	sub, inst, rej, lost := lc.counts()
	if sub != 1 || lost != 1 || inst != 0 || rej != 0 {
		t.Fatalf("submitted/installed/rejected/lost = %d/%d/%d/%d, want 1/0/0/1",
			sub, inst, rej, lost)
	}
}
