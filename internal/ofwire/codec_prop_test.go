package ofwire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"hermes/internal/classifier"
)

// randomRule builds a valid classifier rule from the RNG.
func randomRule(rng *rand.Rand) classifier.Rule {
	dlen := uint8(rng.Intn(33))
	slen := uint8(rng.Intn(33))
	return classifier.Rule{
		ID: classifier.RuleID(rng.Uint64() >> 25), // keep below the reserved range
		Match: classifier.Match{
			Dst: classifier.NewPrefix(rng.Uint32(), dlen),
			Src: classifier.NewPrefix(rng.Uint32(), slen),
		},
		Priority: rng.Int31(),
		Action: classifier.Action{
			Type: classifier.ActionType(rng.Intn(3)),
			Port: rng.Intn(1 << 16),
		},
	}
}

// randomMessage builds a random valid frame of any body-carrying type.
func randomMessage(rng *rand.Rand) *Message {
	hdr := func(t MsgType) Header { return Header{Type: t, XID: rng.Uint32()} }
	switch rng.Intn(10) {
	case 0:
		cmds := []FlowModCommand{FlowAdd, FlowDelete, FlowModify}
		return &Message{
			Header:  hdr(TypeFlowMod),
			FlowMod: FlowModFromRule(cmds[rng.Intn(len(cmds))], randomRule(rng)),
		}
	case 1:
		return &Message{Header: hdr(TypeFlowModReply), FlowModReply: &FlowModReply{
			RuleID: rng.Uint64(), LatencyNS: rng.Uint64(),
			Path: uint8(rng.Intn(4)), Guaranteed: rng.Intn(2) == 0,
			Violation: rng.Intn(2) == 0, Partitions: uint8(rng.Intn(256)),
		}}
	case 2:
		return &Message{Header: hdr(TypeStatsReply), Stats: &Stats{
			Inserts: rng.Uint64(), ShadowInserts: rng.Uint64(), MainInserts: rng.Uint64(),
			Bypasses: rng.Uint64(), Violations: rng.Uint64(), Migrations: rng.Uint64(),
			ShadowOcc: rng.Uint32(), MainOcc: rng.Uint32(), ShadowSize: rng.Uint32(),
			OverheadPPM: rng.Uint32(), MaxRateMilli: rng.Uint64(),
		}}
	case 3:
		return &Message{Header: hdr(TypeQoSRequest), QoSRequest: &QoSRequest{GuaranteeNS: rng.Uint64()}}
	case 4:
		return &Message{Header: hdr(TypeQoSReply), QoSReply: &QoSReply{
			ShadowEntries: rng.Uint32(), OverheadPPM: rng.Uint32(),
			MaxRateMilli: rng.Uint64(), GuaranteeNS: rng.Uint64(),
		}}
	case 5:
		reason := make([]byte, rng.Intn(64))
		rng.Read(reason)
		return &Message{Header: hdr(TypeError), Error: &ErrorBody{
			Code: ErrorCode(rng.Intn(7) + 1), Reason: string(reason),
		}}
	case 6:
		payload := make([]byte, 1+rng.Intn(128))
		rng.Read(payload)
		types := []MsgType{TypeEchoRequest, TypeEchoReply}
		return &Message{Header: hdr(types[rng.Intn(2)]), Raw: payload}
	case 7:
		return &Message{Header: hdr(TypeRulesRequest), RulesRequest: &RulesRequest{
			After: rng.Uint64(), Max: uint16(rng.Intn(1 << 16)),
		}}
	case 8:
		reply := &RulesReply{More: rng.Intn(2) == 0}
		if n := rng.Intn(50); n > 0 {
			reply.Rules = make([]RuleEntry, n)
			for i := range reply.Rules {
				reply.Rules[i] = EntryFromRule(randomRule(rng))
			}
		}
		return &Message{Header: hdr(TypeRulesReply), RulesReply: reply}
	default:
		types := []MsgType{TypeHello, TypeBarrierRequest, TypeBarrierReply, TypeStatsRequest}
		return &Message{Header: hdr(types[rng.Intn(len(types))])}
	}
}

// TestCodecPropertyRoundTrip: encode(decode(m)) preserves every body for
// thousands of randomized frames.
func TestCodecPropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		in := randomMessage(rng)
		var buf bytes.Buffer
		if err := WriteMessage(&buf, in); err != nil {
			t.Fatalf("#%d write %s: %v", i, in.Header.Type, err)
		}
		out, err := ReadMessage(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("#%d read %s: %v", i, in.Header.Type, err)
		}
		if out.Header.Type != in.Header.Type || out.Header.XID != in.Header.XID {
			t.Fatalf("#%d header mismatch: %+v vs %+v", i, out.Header, in.Header)
		}
		// Compare bodies; Raw compares by content (nil == empty).
		if !bytesEqualLoose(out.Raw, in.Raw) {
			t.Fatalf("#%d raw mismatch: %x vs %x", i, out.Raw, in.Raw)
		}
		type bodies struct {
			F  *FlowMod
			R  *FlowModReply
			S  *Stats
			Q  *QoSRequest
			P  *QoSReply
			E  *ErrorBody
			RQ *RulesRequest
			RR *RulesReply
		}
		got := bodies{out.FlowMod, out.FlowModReply, out.Stats, out.QoSRequest, out.QoSReply, out.Error,
			out.RulesRequest, out.RulesReply}
		want := bodies{in.FlowMod, in.FlowModReply, in.Stats, in.QoSRequest, in.QoSReply, in.Error,
			in.RulesRequest, in.RulesReply}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("#%d body mismatch (%s):\n got %+v\nwant %+v", i, in.Header.Type, got, want)
		}
	}
}

func bytesEqualLoose(a, b []byte) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return bytes.Equal(a, b)
}

// TestCodecRuleRoundTrip: a classifier rule survives Rule → FlowMod →
// wire → FlowMod → Rule for randomized rules and matches.
func TestCodecRuleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		r := randomRule(rng)
		m := &Message{Header: Header{Type: TypeFlowMod}, FlowMod: FlowModFromRule(FlowAdd, r)}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
		out, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got := out.FlowMod.Rule()
		if got.ID != r.ID || got.Match != r.Match || got.Priority != r.Priority ||
			got.Action != r.Action {
			t.Fatalf("#%d rule mismatch:\n got %+v\nwant %+v", i, got, r)
		}
	}
}

// TestCodecTruncatedFrames: every strict prefix of a valid frame must
// produce an error — never a panic, never a bogus success.
func TestCodecTruncatedFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		m := randomMessage(rng)
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
		full := buf.Bytes()
		for cut := 0; cut < len(full); cut++ {
			if _, err := ReadMessage(bytes.NewReader(full[:cut])); err == nil {
				t.Fatalf("truncated %s frame at %d/%d bytes decoded without error",
					m.Header.Type, cut, len(full))
			}
		}
	}
}

// TestCodecBodyTooShortForType: a frame whose declared length is valid but
// whose body is shorter than the type's fixed layout must fail with
// ErrTruncated.
func TestCodecBodyTooShortForType(t *testing.T) {
	for _, typ := range []MsgType{TypeFlowMod, TypeFlowModReply, TypeStatsReply,
		TypeQoSRequest, TypeQoSReply, TypeError} {
		raw := []byte{Version, byte(typ), 0, 9, 0, 0, 0, 1, 0xFF} // 1-byte body
		_, err := ReadMessage(bytes.NewReader(raw))
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("%s with 1-byte body: err = %v, want ErrTruncated", typ, err)
		}
	}
}

// TestCodecOversizedFrame: frames beyond MaxMessageLen are refused at
// encode time.
func TestCodecOversizedFrame(t *testing.T) {
	payload := make([]byte, MaxMessageLen) // + header > MaxMessageLen
	err := WriteMessage(io.Discard, &Message{Header: Header{Type: TypeEchoRequest}, Raw: payload})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized echo: err = %v, want ErrTooLarge", err)
	}
	reason := make([]byte, MaxMessageLen)
	err = WriteMessage(io.Discard, &Message{
		Header: Header{Type: TypeError},
		Error:  &ErrorBody{Code: ErrCodeInternal, Reason: string(reason)},
	})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized error: err = %v, want ErrTooLarge", err)
	}
	// A frame of exactly MaxMessageLen would wrap the uint16 length field
	// to zero; it must be refused too.
	err = WriteMessage(io.Discard, &Message{
		Header: Header{Type: TypeEchoRequest},
		Raw:    make([]byte, MaxMessageLen-headerLen),
	})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("length-wrapping echo: err = %v, want ErrTooLarge", err)
	}
	// The largest frame that fits still round-trips.
	payload = payload[:MaxMessageLen-headerLen-1]
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Header: Header{Type: TypeEchoRequest}, Raw: payload}); err != nil {
		t.Fatalf("max-size echo: %v", err)
	}
	out, err := ReadMessage(&buf)
	if err != nil || len(out.Raw) != len(payload) {
		t.Fatalf("max-size echo round trip: %d bytes, %v", len(out.Raw), err)
	}
}
