package ofwire

import (
	"errors"
	"net"
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/tcam"
)

func TestCodecBatchRoundTrip(t *testing.T) {
	in := &Message{Header: Header{Type: TypeFlowModBatch, XID: 11}, FlowModBatch: &FlowModBatch{
		Ops: []FlowMod{
			{Command: FlowAdd, RuleID: 1, Priority: 9, DstAddr: 0x0a000000, DstLen: 8, Action: 1, Port: 3},
			{Command: FlowDelete, RuleID: 2},
			{Command: FlowModify, RuleID: 3, Priority: 4, SrcAddr: 0xc0a80000, SrcLen: 16},
		},
	}}
	got := roundTripMsg(t, in)
	if got.FlowModBatch == nil || len(got.FlowModBatch.Ops) != 3 {
		t.Fatalf("batch body = %+v", got.FlowModBatch)
	}
	for i, op := range got.FlowModBatch.Ops {
		if op != in.FlowModBatch.Ops[i] {
			t.Errorf("op %d changed: %+v vs %+v", i, op, in.FlowModBatch.Ops[i])
		}
	}

	rep := &Message{Header: Header{Type: TypeFlowModBatchReply, XID: 11}, FlowModBatchReply: &FlowModBatchReply{
		Entries: []BatchReplyEntry{
			{Reply: FlowModReply{RuleID: 1, LatencyNS: 2e6, Path: 0, Guaranteed: true, Partitions: 2}},
			{Code: ErrCodeUnknownRule, Reply: FlowModReply{RuleID: 2}},
			{Code: ErrCodeDuplicateRule, Reply: FlowModReply{RuleID: 3}},
		},
	}}
	back := roundTripMsg(t, rep)
	if back.FlowModBatchReply == nil || len(back.FlowModBatchReply.Entries) != 3 {
		t.Fatalf("reply body = %+v", back.FlowModBatchReply)
	}
	for i, e := range back.FlowModBatchReply.Entries {
		if e != rep.FlowModBatchReply.Entries[i] {
			t.Errorf("entry %d changed: %+v vs %+v", i, e, rep.FlowModBatchReply.Entries[i])
		}
	}
	if err := back.FlowModBatchReply.Entries[0].Err(); err != nil {
		t.Errorf("success entry error = %v", err)
	}
	var remote *ErrorBody
	if err := back.FlowModBatchReply.Entries[1].Err(); !errors.As(err, &remote) || remote.Code != ErrCodeUnknownRule {
		t.Errorf("error entry = %v", err)
	}
}

func TestCodecBatchOversized(t *testing.T) {
	fb := &FlowModBatch{Ops: make([]FlowMod, MaxBatchOps+1)}
	m := &Message{Header: Header{Type: TypeFlowModBatch}, FlowModBatch: fb}
	var sink discardWriter
	if err := WriteMessage(&sink, m); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized batch encoded: %v", err)
	}
	// Exactly MaxBatchOps must fit: the frame is the largest legal one.
	fb.Ops = fb.Ops[:MaxBatchOps]
	got := roundTripMsg(t, m)
	if len(got.FlowModBatch.Ops) != MaxBatchOps {
		t.Fatalf("max batch decoded %d ops", len(got.FlowModBatch.Ops))
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

func batchRule(i int) classifier.Rule {
	return classifier.Rule{
		ID:       classifier.RuleID(i + 1),
		Match:    classifier.DstMatch(classifier.NewPrefix(uint32(i)<<12, 20)),
		Priority: int32(i%10 + 1),
		Action:   classifier.Action{Type: classifier.ActionForward, Port: i % 48},
	}
}

func TestClientBatchEndToEnd(t *testing.T) {
	_, addr := startServer(t, core.Config{DisableRateLimit: true})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 64
	rules := make([]classifier.Rule, n)
	for i := range rules {
		rules[i] = batchRule(i)
	}
	results, err := c.InsertBatch(rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, br := range results {
		if br.Err != nil {
			t.Fatalf("insert %d: %v", i, br.Err)
		}
	}

	// The batch landed: stats and a barrier agree with per-op semantics.
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Inserts != n {
		t.Errorf("stats inserts = %d, want %d", st.Inserts, n)
	}

	// Modify every rule, then delete every rule, all vectored.
	for i := range rules {
		rules[i].Action.Port = (rules[i].Action.Port + 1) % 48
	}
	results, err = c.ModifyBatch(rules)
	if err != nil {
		t.Fatal(err)
	}
	for i, br := range results {
		if br.Err != nil {
			t.Fatalf("modify %d: %v", i, br.Err)
		}
	}
	ids := make([]classifier.RuleID, n)
	for i := range ids {
		ids[i] = rules[i].ID
	}
	results, err = c.DeleteBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, br := range results {
		if br.Err != nil {
			t.Fatalf("delete %d: %v", i, br.Err)
		}
	}
	st, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ShadowOcc+st.MainOcc != 0 {
		t.Errorf("occupancy after batched deletes = %d+%d", st.ShadowOcc, st.MainOcc)
	}
}

// TestClientBatchPerOpErrors exercises the per-slot error demux: failures
// are reported in their slot without stopping the batch, and ops observe
// earlier ops' effects in order (insert→delete of the same rule inside
// one frame both succeed).
func TestClientBatchPerOpErrors(t *testing.T) {
	_, addr := startServer(t, core.Config{DisableRateLimit: true})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Insert(batchRule(0)); err != nil {
		t.Fatal(err)
	}
	ops := []FlowMod{
		*FlowModFromRule(FlowAdd, batchRule(1)),
		*FlowModFromRule(FlowAdd, batchRule(0)), // duplicate
		*FlowModFromRule(FlowDelete, classifier.Rule{ID: batchRule(1).ID}),
		*FlowModFromRule(FlowDelete, classifier.Rule{ID: 9999}), // unknown
		*FlowModFromRule(FlowAdd, batchRule(2)),
	}
	results, err := c.ApplyBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ops) {
		t.Fatalf("got %d results, want %d", len(results), len(ops))
	}
	var remote *ErrorBody
	if results[0].Err != nil {
		t.Errorf("op 0: %v", results[0].Err)
	}
	if !errors.As(results[1].Err, &remote) || remote.Code != ErrCodeDuplicateRule {
		t.Errorf("op 1 err = %v", results[1].Err)
	}
	if results[2].Err != nil {
		t.Errorf("op 2 (delete of op 0's insert) failed: %v", results[2].Err)
	}
	if !errors.As(results[3].Err, &remote) || remote.Code != ErrCodeUnknownRule {
		t.Errorf("op 3 err = %v", results[3].Err)
	}
	if results[4].Err != nil {
		t.Errorf("op 4: %v", results[4].Err)
	}
}

// TestClientBatchSplitsOversized proves the client chunks a batch larger
// than one 64KiB frame transparently: every op still gets exactly one
// result, in submission order.
func TestClientBatchSplitsOversized(t *testing.T) {
	_, addr := startServer(t, core.Config{DisableRateLimit: true})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	n := MaxBatchOps + 17 // forces a second frame
	rules := make([]classifier.Rule, n)
	for i := range rules {
		rules[i] = batchRule(i)
	}
	results, err := c.InsertBatch(rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, br := range results {
		if br.Err != nil {
			t.Fatalf("insert %d: %v", i, br.Err)
		}
	}
	// Result order matches submission order across the chunk boundary:
	// deleting by the same IDs succeeds for every slot.
	ids := make([]classifier.RuleID, n)
	for i := range ids {
		ids[i] = rules[i].ID
	}
	results, err = c.DeleteBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, br := range results {
		if br.Err != nil {
			t.Fatalf("delete %d (chunk boundary at %d): %v", i, MaxBatchOps, br.Err)
		}
	}
}

// benchServer spawns an agent server for the wire ingest benchmarks. A
// long guarantee keeps the flight recorder quiet; the bypass ablation
// keeps every insert on the uncut fast path.
func benchServer(b *testing.B) string {
	b.Helper()
	srv, err := NewAgentServer("bench", tcam.Pica8P3290, core.Config{
		Guarantee:                time.Second,
		DisableRateLimit:         true,
		DisableLowPriorityBypass: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	b.Cleanup(func() { srv.Close() })
	return lis.Addr().String()
}

// BenchmarkWireInsertPerOp is the per-op ingest baseline over a real TCP
// loopback connection: 64 inserts + 64 deletes, each its own request,
// write syscall, and wire round trip.
func BenchmarkWireInsertPerOp(b *testing.B) {
	c, err := Dial(benchServer(b), time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	const batch = 64
	rules := make([]classifier.Rule, batch)
	for i := range rules {
		rules[i] = batchRule(i)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i := range rules {
			if _, err := c.Insert(rules[i]); err != nil {
				b.Fatal(err)
			}
		}
		for i := range rules {
			if _, err := c.Delete(rules[i].ID); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkWireInsertBatch64 is the vectored ingest path: the same 64
// inserts + 64 deletes as BenchmarkWireInsertPerOp, but two
// flow-mod-batch frames — one syscall and one wire round trip each, one
// agent lock acquisition and one snapshot refresh per batch.
func BenchmarkWireInsertBatch64(b *testing.B) {
	c, err := Dial(benchServer(b), time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	const batch = 64
	rules := make([]classifier.Rule, batch)
	ids := make([]classifier.RuleID, batch)
	for i := range rules {
		rules[i] = batchRule(i)
		ids[i] = rules[i].ID
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		results, err := c.InsertBatch(rules)
		if err != nil {
			b.Fatal(err)
		}
		for i := range results {
			if results[i].Err != nil {
				b.Fatalf("insert %d: %v", i, results[i].Err)
			}
		}
		results, err = c.DeleteBatch(ids)
		if err != nil {
			b.Fatal(err)
		}
		for i := range results {
			if results[i].Err != nil {
				b.Fatalf("delete %d: %v", i, results[i].Err)
			}
		}
	}
}

func TestClientBatchEmpty(t *testing.T) {
	_, addr := startServer(t, core.Config{DisableRateLimit: true})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	results, err := c.InsertBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("empty batch returned %d results", len(results))
	}
}
