// Package ofwire implements a compact OpenFlow-inspired control channel
// between an SDN controller and a Hermes-managed switch agent (the
// deployment of Fig. 2: controller → OF agent → Hermes agent → ASIC).
//
// The protocol is intentionally minimal but wire-realistic: fixed 8-byte
// headers (version, type, length, transaction id) followed by fixed-layout
// bodies, big-endian like OpenFlow. Beyond the classic message types
// (Hello, Echo, FlowMod, Barrier, Error, Stats) it carries the Hermes QoS
// extension — CreateTCAMQoS over the wire — so a controller can negotiate
// guarantees remotely (§7).
//
// Framing and codecs use only the standard library (encoding/binary, net).
package ofwire

import (
	"errors"
	"fmt"
	"time"

	"hermes/internal/classifier"
)

// Version is the protocol version carried in every header.
const Version = 1

// MaxMessageLen bounds a frame; anything larger is a protocol error.
const MaxMessageLen = 1 << 16

// MsgType enumerates message kinds.
type MsgType uint8

// Message types.
const (
	TypeHello MsgType = iota + 1
	TypeEchoRequest
	TypeEchoReply
	TypeFlowMod
	TypeFlowModReply
	TypeBarrierRequest
	TypeBarrierReply
	TypeStatsRequest
	TypeStatsReply
	TypeQoSRequest
	TypeQoSReply
	TypeError
	TypeRulesRequest
	TypeRulesReply
	TypeFlowModBatch
	TypeFlowModBatchReply
)

func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeEchoRequest:
		return "echo-request"
	case TypeEchoReply:
		return "echo-reply"
	case TypeFlowMod:
		return "flow-mod"
	case TypeFlowModReply:
		return "flow-mod-reply"
	case TypeBarrierRequest:
		return "barrier-request"
	case TypeBarrierReply:
		return "barrier-reply"
	case TypeStatsRequest:
		return "stats-request"
	case TypeStatsReply:
		return "stats-reply"
	case TypeQoSRequest:
		return "qos-request"
	case TypeQoSReply:
		return "qos-reply"
	case TypeError:
		return "error"
	case TypeRulesRequest:
		return "rules-request"
	case TypeRulesReply:
		return "rules-reply"
	case TypeFlowModBatch:
		return "flow-mod-batch"
	case TypeFlowModBatchReply:
		return "flow-mod-batch-reply"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Protocol errors.
var (
	ErrBadVersion = errors.New("ofwire: bad protocol version")
	ErrTooLarge   = errors.New("ofwire: frame exceeds maximum length")
	ErrTruncated  = errors.New("ofwire: truncated body")
	ErrBadType    = errors.New("ofwire: unknown message type")
)

// Header is the fixed 8-byte frame prefix.
type Header struct {
	Version uint8
	Type    MsgType
	Length  uint16 // total frame length including the header
	XID     uint32 // transaction id echoed in replies
}

const headerLen = 8

// Message is one decoded frame.
type Message struct {
	Header Header
	// Body is exactly one of the pointers below, matching Header.Type;
	// Hello, Echo and Barrier frames have nil bodies (Echo payload rides
	// in Raw).
	FlowMod           *FlowMod
	FlowModReply      *FlowModReply
	FlowModBatch      *FlowModBatch
	FlowModBatchReply *FlowModBatchReply
	Stats             *Stats
	QoSRequest        *QoSRequest
	QoSReply          *QoSReply
	Error             *ErrorBody
	RulesRequest      *RulesRequest
	RulesReply        *RulesReply
	Raw               []byte // echo payloads and unrecognized-but-valid bodies
}

// FlowModCommand selects the flow-mod operation.
type FlowModCommand uint8

// Flow-mod commands.
const (
	FlowAdd FlowModCommand = iota + 1
	FlowDelete
	FlowModify
)

// FlowMod is the rule-change request (fixed 28-byte body).
type FlowMod struct {
	Command  FlowModCommand
	RuleID   uint64
	Priority int32
	DstAddr  uint32
	DstLen   uint8
	SrcAddr  uint32
	SrcLen   uint8
	Action   uint8 // classifier.ActionType
	Port     uint16
}

// Rule converts the wire form to the classifier form.
func (f *FlowMod) Rule() classifier.Rule {
	return classifier.Rule{
		ID: classifier.RuleID(f.RuleID),
		Match: classifier.Match{
			Dst: classifier.NewPrefix(f.DstAddr, f.DstLen),
			Src: classifier.NewPrefix(f.SrcAddr, f.SrcLen),
		},
		Priority: f.Priority,
		Action:   classifier.Action{Type: classifier.ActionType(f.Action), Port: int(f.Port)},
	}
}

// FlowModFromRule builds the wire form of a rule change.
func FlowModFromRule(cmd FlowModCommand, r classifier.Rule) *FlowMod {
	return &FlowMod{
		Command:  cmd,
		RuleID:   uint64(r.ID),
		Priority: r.Priority,
		DstAddr:  r.Match.Dst.Addr,
		DstLen:   r.Match.Dst.Len,
		SrcAddr:  r.Match.Src.Addr,
		SrcLen:   r.Match.Src.Len,
		Action:   uint8(r.Action.Type),
		Port:     clampU16(r.Action.Port),
	}
}

// FlowModReply reports the outcome of one flow-mod (fixed 24-byte body).
type FlowModReply struct {
	RuleID     uint64
	LatencyNS  uint64 // modeled hardware latency
	Path       uint8  // core.InsertPath for adds; 0 otherwise
	Guaranteed bool
	Violation  bool
	Partitions uint8
}

// FlowModBatch vectors N flow-mods into one frame under one XID — one
// syscall and one agent lock acquisition per batch instead of per op
// (the DevoFlow observation: per-flow control-channel overhead dominates
// at scale). Ops apply in order; the reply carries one entry per op.
type FlowModBatch struct {
	Ops []FlowMod
}

// MaxBatchOps is the largest batch that fits one 64KiB frame. The reply
// entry (22 bytes) is smaller than the request entry (28 bytes), so any
// request that fits guarantees its reply fits too.
const MaxBatchOps = (MaxMessageLen - 1 - headerLen - batchFixedLen) / flowModLen

// BatchReplyEntry is the per-op outcome inside a batch reply: a status
// code (0 = ok) plus the usual flow-mod reply fields.
type BatchReplyEntry struct {
	Code  ErrorCode // 0 on success
	Reply FlowModReply
}

// Err returns the entry's failure as an error, or nil on success. The
// returned error is an *ErrorBody so callers can classify it exactly like
// a per-op error frame (errors.As against *ErrorBody).
func (e BatchReplyEntry) Err() error {
	if e.Code == 0 {
		return nil
	}
	return &ErrorBody{Code: e.Code, Reason: e.Code.String()}
}

// FlowModBatchReply carries one entry per op of the matching batch, in
// op order.
type FlowModBatchReply struct {
	Entries []BatchReplyEntry
}

// Stats is the agent-counter snapshot (fixed 64-byte body).
type Stats struct {
	Inserts       uint64
	ShadowInserts uint64
	MainInserts   uint64
	Bypasses      uint64
	Violations    uint64
	Migrations    uint64
	ShadowOcc     uint32
	MainOcc       uint32
	ShadowSize    uint32
	// OverheadPPM is the TCAM overhead in parts-per-million.
	OverheadPPM uint32
	// MaxRateMilli is the admissible rate in milli-rules/second.
	MaxRateMilli uint64
}

// QoSRequest asks the agent to (re)configure its guarantee (fixed 8-byte
// body) — CreateTCAMQoS over the wire.
type QoSRequest struct {
	GuaranteeNS uint64
}

// Guarantee returns the requested bound.
func (q *QoSRequest) Guarantee() time.Duration { return time.Duration(q.GuaranteeNS) }

// QoSReply carries the negotiated configuration (fixed 24-byte body).
type QoSReply struct {
	ShadowEntries uint32
	OverheadPPM   uint32
	MaxRateMilli  uint64
	GuaranteeNS   uint64
}

// RulesRequest asks the agent for one page of its controller-visible rule
// set (fixed 10-byte body) — the multipart table dump a level-triggered
// reconciler diffs its desired state against. After is an exclusive rule-ID
// cursor (0 starts the dump); Max caps the entries in the reply so every
// page fits the 64KiB frame bound. Cursor pagination keyed by rule ID stays
// coherent even when the table mutates between pages: a page never repeats
// an ID the previous page already carried.
type RulesRequest struct {
	After uint64
	Max   uint16
}

// MaxRuleEntries is the largest page an agent returns (and the default for
// a request with Max == 0): the most 25-byte entries that fit one frame.
const MaxRuleEntries = (MaxMessageLen - headerLen - rulesReplyFixedLen - 1) / ruleEntryLen

// RulesReply is one page of the dump: entries sorted by rule ID, plus a
// continuation flag.
type RulesReply struct {
	More  bool
	Rules []RuleEntry
}

// RuleEntry is the wire form of one installed rule (25-byte layout).
type RuleEntry struct {
	RuleID   uint64
	Priority int32
	DstAddr  uint32
	DstLen   uint8
	SrcAddr  uint32
	SrcLen   uint8
	Action   uint8 // classifier.ActionType
	Port     uint16
}

// Rule converts the wire form to the classifier form.
func (e RuleEntry) Rule() classifier.Rule {
	return classifier.Rule{
		ID: classifier.RuleID(e.RuleID),
		Match: classifier.Match{
			Dst: classifier.NewPrefix(e.DstAddr, e.DstLen),
			Src: classifier.NewPrefix(e.SrcAddr, e.SrcLen),
		},
		Priority: e.Priority,
		Action:   classifier.Action{Type: classifier.ActionType(e.Action), Port: int(e.Port)},
	}
}

// EntryFromRule builds the wire form of one rule.
func EntryFromRule(r classifier.Rule) RuleEntry {
	return RuleEntry{
		RuleID:   uint64(r.ID),
		Priority: r.Priority,
		DstAddr:  r.Match.Dst.Addr,
		DstLen:   r.Match.Dst.Len,
		SrcAddr:  r.Match.Src.Addr,
		SrcLen:   r.Match.Src.Len,
		Action:   uint8(r.Action.Type),
		Port:     clampU16(r.Action.Port),
	}
}

// ErrorCode classifies protocol and execution failures.
type ErrorCode uint16

// Error codes.
const (
	ErrCodeBadRequest ErrorCode = iota + 1
	ErrCodeTableFull
	ErrCodeUnknownRule
	ErrCodeDuplicateRule
	ErrCodeQoSInfeasible
	ErrCodeInternal
)

func (c ErrorCode) String() string {
	switch c {
	case ErrCodeBadRequest:
		return "bad request"
	case ErrCodeTableFull:
		return "table full"
	case ErrCodeUnknownRule:
		return "unknown rule"
	case ErrCodeDuplicateRule:
		return "duplicate rule"
	case ErrCodeQoSInfeasible:
		return "qos infeasible"
	case ErrCodeInternal:
		return "internal error"
	default:
		return fmt.Sprintf("error(%d)", uint16(c))
	}
}

// ErrorBody is the error frame body: a code plus a short reason.
type ErrorBody struct {
	Code   ErrorCode
	Reason string
}

func (e *ErrorBody) Error() string {
	return fmt.Sprintf("ofwire: remote error %d: %s", e.Code, e.Reason)
}
