// Package ofwire implements a compact OpenFlow-inspired control channel
// between an SDN controller and a Hermes-managed switch agent (the
// deployment of Fig. 2: controller → OF agent → Hermes agent → ASIC).
//
// The protocol is intentionally minimal but wire-realistic: fixed 8-byte
// headers (version, type, length, transaction id) followed by fixed-layout
// bodies, big-endian like OpenFlow. Beyond the classic message types
// (Hello, Echo, FlowMod, Barrier, Error, Stats) it carries the Hermes QoS
// extension — CreateTCAMQoS over the wire — so a controller can negotiate
// guarantees remotely (§7).
//
// Framing and codecs use only the standard library (encoding/binary, net).
package ofwire

import (
	"errors"
	"fmt"
	"time"

	"hermes/internal/classifier"
)

// Version is the protocol version carried in every header.
const Version = 1

// MaxMessageLen bounds a frame; anything larger is a protocol error.
const MaxMessageLen = 1 << 16

// MsgType enumerates message kinds.
type MsgType uint8

// Message types.
const (
	TypeHello MsgType = iota + 1
	TypeEchoRequest
	TypeEchoReply
	TypeFlowMod
	TypeFlowModReply
	TypeBarrierRequest
	TypeBarrierReply
	TypeStatsRequest
	TypeStatsReply
	TypeQoSRequest
	TypeQoSReply
	TypeError
)

func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeEchoRequest:
		return "echo-request"
	case TypeEchoReply:
		return "echo-reply"
	case TypeFlowMod:
		return "flow-mod"
	case TypeFlowModReply:
		return "flow-mod-reply"
	case TypeBarrierRequest:
		return "barrier-request"
	case TypeBarrierReply:
		return "barrier-reply"
	case TypeStatsRequest:
		return "stats-request"
	case TypeStatsReply:
		return "stats-reply"
	case TypeQoSRequest:
		return "qos-request"
	case TypeQoSReply:
		return "qos-reply"
	case TypeError:
		return "error"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Protocol errors.
var (
	ErrBadVersion = errors.New("ofwire: bad protocol version")
	ErrTooLarge   = errors.New("ofwire: frame exceeds maximum length")
	ErrTruncated  = errors.New("ofwire: truncated body")
	ErrBadType    = errors.New("ofwire: unknown message type")
)

// Header is the fixed 8-byte frame prefix.
type Header struct {
	Version uint8
	Type    MsgType
	Length  uint16 // total frame length including the header
	XID     uint32 // transaction id echoed in replies
}

const headerLen = 8

// Message is one decoded frame.
type Message struct {
	Header Header
	// Body is exactly one of the pointers below, matching Header.Type;
	// Hello, Echo and Barrier frames have nil bodies (Echo payload rides
	// in Raw).
	FlowMod      *FlowMod
	FlowModReply *FlowModReply
	Stats        *Stats
	QoSRequest   *QoSRequest
	QoSReply     *QoSReply
	Error        *ErrorBody
	Raw          []byte // echo payloads and unrecognized-but-valid bodies
}

// FlowModCommand selects the flow-mod operation.
type FlowModCommand uint8

// Flow-mod commands.
const (
	FlowAdd FlowModCommand = iota + 1
	FlowDelete
	FlowModify
)

// FlowMod is the rule-change request (fixed 28-byte body).
type FlowMod struct {
	Command  FlowModCommand
	RuleID   uint64
	Priority int32
	DstAddr  uint32
	DstLen   uint8
	SrcAddr  uint32
	SrcLen   uint8
	Action   uint8 // classifier.ActionType
	Port     uint16
}

// Rule converts the wire form to the classifier form.
func (f *FlowMod) Rule() classifier.Rule {
	return classifier.Rule{
		ID: classifier.RuleID(f.RuleID),
		Match: classifier.Match{
			Dst: classifier.NewPrefix(f.DstAddr, f.DstLen),
			Src: classifier.NewPrefix(f.SrcAddr, f.SrcLen),
		},
		Priority: f.Priority,
		Action:   classifier.Action{Type: classifier.ActionType(f.Action), Port: int(f.Port)},
	}
}

// FlowModFromRule builds the wire form of a rule change.
func FlowModFromRule(cmd FlowModCommand, r classifier.Rule) *FlowMod {
	return &FlowMod{
		Command:  cmd,
		RuleID:   uint64(r.ID),
		Priority: r.Priority,
		DstAddr:  r.Match.Dst.Addr,
		DstLen:   r.Match.Dst.Len,
		SrcAddr:  r.Match.Src.Addr,
		SrcLen:   r.Match.Src.Len,
		Action:   uint8(r.Action.Type),
		Port:     clampU16(r.Action.Port),
	}
}

// FlowModReply reports the outcome of one flow-mod (fixed 24-byte body).
type FlowModReply struct {
	RuleID     uint64
	LatencyNS  uint64 // modeled hardware latency
	Path       uint8  // core.InsertPath for adds; 0 otherwise
	Guaranteed bool
	Violation  bool
	Partitions uint8
}

// Stats is the agent-counter snapshot (fixed 64-byte body).
type Stats struct {
	Inserts       uint64
	ShadowInserts uint64
	MainInserts   uint64
	Bypasses      uint64
	Violations    uint64
	Migrations    uint64
	ShadowOcc     uint32
	MainOcc       uint32
	ShadowSize    uint32
	// OverheadPPM is the TCAM overhead in parts-per-million.
	OverheadPPM uint32
	// MaxRateMilli is the admissible rate in milli-rules/second.
	MaxRateMilli uint64
}

// QoSRequest asks the agent to (re)configure its guarantee (fixed 8-byte
// body) — CreateTCAMQoS over the wire.
type QoSRequest struct {
	GuaranteeNS uint64
}

// Guarantee returns the requested bound.
func (q *QoSRequest) Guarantee() time.Duration { return time.Duration(q.GuaranteeNS) }

// QoSReply carries the negotiated configuration (fixed 24-byte body).
type QoSReply struct {
	ShadowEntries uint32
	OverheadPPM   uint32
	MaxRateMilli  uint64
	GuaranteeNS   uint64
}

// ErrorCode classifies protocol and execution failures.
type ErrorCode uint16

// Error codes.
const (
	ErrCodeBadRequest ErrorCode = iota + 1
	ErrCodeTableFull
	ErrCodeUnknownRule
	ErrCodeDuplicateRule
	ErrCodeQoSInfeasible
	ErrCodeInternal
)

// ErrorBody is the error frame body: a code plus a short reason.
type ErrorBody struct {
	Code   ErrorCode
	Reason string
}

func (e *ErrorBody) Error() string {
	return fmt.Sprintf("ofwire: remote error %d: %s", e.Code, e.Reason)
}
