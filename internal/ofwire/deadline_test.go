package ofwire

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
)

// TestRequestTimeoutAbandonsOnlyThatRequest: the peer swallows the first
// request and serves the second. The deadline must fail the first caller
// without poisoning the connection — the second request still completes.
func TestRequestTimeoutAbandonsOnlyThatRequest(t *testing.T) {
	c := fakePeer(t, func(conn net.Conn) error {
		if _, err := ReadMessage(conn); err != nil {
			return err // first request: swallowed, never answered
		}
		r2, err := ReadMessage(conn)
		if err != nil {
			return err
		}
		return WriteMessage(conn, &Message{
			Header: Header{Type: TypeEchoReply, XID: r2.Header.XID},
			Raw:    r2.Raw,
		})
	})
	c.SetRequestTimeout(50 * time.Millisecond)
	if got := c.RequestTimeout(); got != 50*time.Millisecond {
		t.Fatalf("RequestTimeout = %v", got)
	}
	if _, err := c.Echo([]byte("lost")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("swallowed request: err = %v, want deadline exceeded", err)
	}
	c.SetRequestTimeout(0)
	got, err := c.Echo([]byte("ok"))
	if err != nil || string(got) != "ok" {
		t.Fatalf("follow-up echo = %q, %v; the timeout poisoned the connection", got, err)
	}
}

// TestCtxVariantsHonorCancellation: an already-cancelled context returns
// immediately with the context's error on every *Ctx entry point.
func TestCtxVariantsHonorCancellation(t *testing.T) {
	var mu sync.Mutex
	swallowed := 0
	c := fakePeer(t, func(conn net.Conn) error {
		for {
			if _, err := ReadMessage(conn); err != nil {
				return nil // client hung up
			}
			mu.Lock()
			swallowed++
			mu.Unlock()
		}
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rule := classifier.Rule{ID: 1, Priority: 1}
	if _, err := c.InsertCtx(ctx, rule); !errors.Is(err, context.Canceled) {
		t.Fatalf("InsertCtx: %v", err)
	}
	if _, err := c.DeleteCtx(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("DeleteCtx: %v", err)
	}
	if _, err := c.ModifyCtx(ctx, rule); !errors.Is(err, context.Canceled) {
		t.Fatalf("ModifyCtx: %v", err)
	}
	if err := c.BarrierCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("BarrierCtx: %v", err)
	}
	if _, err := c.EchoCtx(ctx, []byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("EchoCtx: %v", err)
	}
	if _, err := c.StatsCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("StatsCtx: %v", err)
	}
	mu.Lock()
	n := swallowed
	mu.Unlock()
	if n == 0 {
		t.Fatal("requests never reached the wire")
	}
}

// TestServerShutdownDrains: a graceful shutdown lets in-flight traffic
// finish, returns within the drain bound, and leaves no goroutines behind
// (startServer arms the leak check).
func TestServerShutdownDrains(t *testing.T) {
	srv, addr := startServer(t, core.Config{DisableRateLimit: true})
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Insert(classifier.Rule{
		ID:       1,
		Match:    classifier.DstMatch(classifier.MustParsePrefix("10.0.0.0/24")),
		Priority: 5,
		Action:   classifier.Action{Type: classifier.ActionForward, Port: 3},
	}); err != nil {
		t.Fatal(err)
	}

	// Keep traffic flowing while the shutdown lands.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Echo([]byte("ping")); err != nil {
				return // the drain cut us off, as expected
			}
		}
	}()

	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	if err := srv.Shutdown(200 * time.Millisecond); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shutdown took %v, want bounded by the drain deadline", elapsed)
	}
	close(stop)
	wg.Wait()

	// The listener is gone: new controllers cannot attach.
	if _, err := Dial(addr, 100*time.Millisecond); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
	// Repeated shutdown must not hang or panic (Close runs later in the
	// test cleanup and must also be safe after Shutdown).
	srv.Shutdown(10 * time.Millisecond) //nolint:errcheck
}
