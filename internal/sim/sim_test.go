package sim

import (
	"testing"
	"time"
)

func TestScheduleOrder(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(3*time.Millisecond, func(time.Duration) { order = append(order, 3) })
	e.Schedule(1*time.Millisecond, func(time.Duration) { order = append(order, 1) })
	e.Schedule(2*time.Millisecond, func(time.Duration) { order = append(order, 2) })
	end := e.Run(0)
	if end != 3*time.Millisecond {
		t.Errorf("end = %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func(time.Duration) { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestScheduleInPastClamps(t *testing.T) {
	e := New()
	var at time.Duration
	e.Schedule(5*time.Millisecond, func(now time.Duration) {
		e.Schedule(time.Millisecond, func(now2 time.Duration) { at = now2 })
	})
	e.Run(0)
	if at != 5*time.Millisecond {
		t.Errorf("past event ran at %v, want clamp to 5ms", at)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	ran := 0
	e.Schedule(time.Millisecond, func(time.Duration) { ran++ })
	e.Schedule(10*time.Millisecond, func(time.Duration) { ran++ })
	end := e.Run(5 * time.Millisecond)
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	if end != 5*time.Millisecond {
		t.Errorf("end = %v, want 5ms", end)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d", e.Pending())
	}
	// Resume runs the rest.
	e.Run(0)
	if ran != 2 {
		t.Errorf("ran after resume = %d", ran)
	}
}

func TestAfterAndCascade(t *testing.T) {
	e := New()
	var times []time.Duration
	e.After(time.Millisecond, func(now time.Duration) {
		times = append(times, now)
		e.After(2*time.Millisecond, func(now2 time.Duration) {
			times = append(times, now2)
		})
	})
	e.Run(0)
	if len(times) != 2 || times[0] != time.Millisecond || times[1] != 3*time.Millisecond {
		t.Errorf("times = %v", times)
	}
}

func TestStop(t *testing.T) {
	e := New()
	ran := 0
	e.Schedule(time.Millisecond, func(time.Duration) { ran++; e.Stop() })
	e.Schedule(2*time.Millisecond, func(time.Duration) { ran++ })
	e.Run(0)
	if ran != 1 {
		t.Errorf("ran = %d after Stop, want 1", ran)
	}
}

func TestStep(t *testing.T) {
	e := New()
	ran := 0
	e.Schedule(time.Millisecond, func(time.Duration) { ran++ })
	if !e.Step() || ran != 1 {
		t.Error("Step must run the event")
	}
	if e.Step() {
		t.Error("Step on empty queue must return false")
	}
}
