// Package sim implements the discrete-event engine that drives the Varys
// flow-level network simulator and the Hermes control-plane experiments.
//
// Time is virtual: a time.Duration offset from the start of the simulation.
// Events are executed in timestamp order; ties are broken by scheduling
// order, which makes runs fully deterministic.
package sim

import (
	"container/heap"
	"time"
)

// Event is a callback scheduled at a virtual time.
type Event func(now time.Duration)

type item struct {
	at  time.Duration
	seq uint64
	fn  Event
}

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*item)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Engine is a deterministic discrete-event scheduler. The zero value is
// ready to use.
type Engine struct {
	queue eventHeap
	now   time.Duration
	seq   uint64
	halt  bool
}

// New returns a fresh engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule runs fn at virtual time at. Scheduling in the past (at < Now) is
// clamped to Now, preserving causality.
func (e *Engine) Schedule(at time.Duration, fn Event) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.queue, &item{at: at, seq: e.seq, fn: fn})
}

// After schedules fn delay after the current time.
func (e *Engine) After(delay time.Duration, fn Event) {
	e.Schedule(e.now+delay, fn)
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.halt = true }

// Run executes events until the queue empties or the clock passes until.
// Pass a non-positive until to run to quiescence. It returns the final
// virtual time.
func (e *Engine) Run(until time.Duration) time.Duration {
	e.halt = false
	for len(e.queue) > 0 && !e.halt {
		next := e.queue[0]
		if until > 0 && next.at > until {
			e.now = until
			return e.now
		}
		heap.Pop(&e.queue)
		e.now = next.at
		next.fn(e.now)
	}
	return e.now
}

// Step executes exactly one event if any is queued, returning true when an
// event ran.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	next := heap.Pop(&e.queue).(*item)
	e.now = next.at
	next.fn(e.now)
	return true
}
