// Package workload generates the paper's evaluation workloads (§8.1.3):
//
//   - Facebook: a synthetic MapReduce job trace with the published shape of
//     the Facebook cluster workload [Chowdhury et al.] — Poisson job
//     arrivals, heavy-tailed job sizes, map×reduce shuffle flow structure —
//     scaled down so experiments run on one machine;
//   - Abilene/Geant/Quest: tomo-gravity traffic matrices over ISP
//     topologies, converted to Poisson flow arrivals with sizes partitioned
//     from the matrix rates, exactly as §8.1.3 describes;
//   - MicroBench: systematic rule-insertion streams sweeping arrival rate,
//     overlap rate and priorities for the §8.5/§8.6 microbenchmarks.
//
// All generators are deterministic given their *rand.Rand.
package workload

import (
	"math"
	"math/rand"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/topo"
)

// FlowSpec is one flow of a job: Bytes from Src to Dst, released StartDelay
// after the job arrives.
type FlowSpec struct {
	Src, Dst   topo.NodeID
	Bytes      float64
	StartDelay time.Duration
}

// Job is a set of flows with a common arrival time (a MapReduce shuffle).
type Job struct {
	ID      int
	Arrival time.Duration
	Flows   []FlowSpec
}

// TotalBytes sums the job's flow sizes.
func (j Job) TotalBytes() float64 {
	var total float64
	for _, f := range j.Flows {
		total += f.Bytes
	}
	return total
}

// Short reports whether the job moves less than 1 GB — the paper's
// short/long job split (Fig. 1).
func (j Job) Short() bool { return j.TotalBytes() < 1e9 }

// FacebookConfig tunes the synthetic Facebook trace.
type FacebookConfig struct {
	// Jobs is the number of jobs to generate (the paper replays 24402; the
	// default experiments use a scaled-down count).
	Jobs int
	// Duration is the span over which job arrivals are spread.
	Duration time.Duration
	// Hosts are the candidate endpoints (the fat-tree's host nodes).
	Hosts []topo.NodeID
}

// FacebookJobs synthesizes a MapReduce trace: Poisson arrivals; mappers and
// reducers drawn per job; flow sizes log-normal with a heavy tail so that
// most jobs are "short" (<1 GB) while a minority of large shuffles carry
// most bytes — the shape reported for the Facebook cluster.
func FacebookJobs(rng *rand.Rand, cfg FacebookConfig) []Job {
	if cfg.Jobs <= 0 || len(cfg.Hosts) < 2 {
		return nil
	}
	meanGap := cfg.Duration.Seconds() / float64(cfg.Jobs)
	jobs := make([]Job, 0, cfg.Jobs)
	now := 0.0
	for i := 0; i < cfg.Jobs; i++ {
		now += rng.ExpFloat64() * meanGap
		mappers := 1 + rng.Intn(5)
		reducers := 1 + rng.Intn(5)
		// Per-flow bytes: log-normal body with occasional elephant jobs.
		mu, sigma := 16.5, 1.6 // median ≈ 15 MB per flow
		if rng.Float64() < 0.10 {
			mu = 21.0 // elephant: median ≈ 1.3 GB per flow
		}
		srcs := pickDistinct(rng, cfg.Hosts, mappers)
		dsts := pickDistinct(rng, cfg.Hosts, reducers)
		job := Job{ID: i, Arrival: time.Duration(now * float64(time.Second))}
		for _, s := range srcs {
			for _, d := range dsts {
				if s == d {
					continue
				}
				bytes := math.Exp(mu + sigma*rng.NormFloat64())
				job.Flows = append(job.Flows, FlowSpec{Src: s, Dst: d, Bytes: bytes})
			}
		}
		if len(job.Flows) == 0 {
			continue
		}
		jobs = append(jobs, job)
	}
	return jobs
}

func pickDistinct(rng *rand.Rand, from []topo.NodeID, n int) []topo.NodeID {
	if n >= len(from) {
		n = len(from)
	}
	idx := rng.Perm(len(from))[:n]
	out := make([]topo.NodeID, n)
	for i, j := range idx {
		out[i] = from[j]
	}
	return out
}

// TrafficMatrix holds demand rates (bytes/second) between PoP hosts.
type TrafficMatrix struct {
	Hosts []topo.NodeID
	// Rate[i][j] is the demand from Hosts[i] to Hosts[j] in bytes/second.
	Rate [][]float64
}

// GravityTM synthesizes a traffic matrix with the tomo-gravity model
// [Zhang et al., SIGMETRICS'03]: each PoP gets a random total mass and the
// demand between two PoPs is proportional to the product of their masses —
// the method the paper uses for the Geant and Quest workloads (§8.1.3).
func GravityTM(rng *rand.Rand, hosts []topo.NodeID, totalBytesPerSec float64) *TrafficMatrix {
	n := len(hosts)
	mass := make([]float64, n)
	var sum float64
	for i := range mass {
		// Pareto-ish masses: a few big PoPs dominate, as in real ISPs.
		mass[i] = math.Exp(rng.NormFloat64() * 1.2)
		sum += mass[i]
	}
	tm := &TrafficMatrix{Hosts: hosts, Rate: make([][]float64, n)}
	for i := range tm.Rate {
		tm.Rate[i] = make([]float64, n)
		for j := range tm.Rate[i] {
			if i == j {
				continue
			}
			tm.Rate[i][j] = totalBytesPerSec * (mass[i] / sum) * (mass[j] / sum)
		}
	}
	return tm
}

// AbileneTM synthesizes a demand matrix shaped like the 2004 Abilene
// measurements: coastal PoPs (NYC, CHI, LAX, SNV) exchange most traffic.
// It is gravity-based with fixed masses, standing in for the published
// matrices (§8.1.3's dataset is replayed through the same interface).
func AbileneTM(hosts []topo.NodeID, totalBytesPerSec float64) *TrafficMatrix {
	// Masses follow the relative PoP volumes of the Abilene dataset.
	masses := []float64{3.0, 2.4, 1.8, 1.5, 1.2, 1.0, 1.3, 0.9, 2.1, 1.1, 2.6}
	n := len(hosts)
	var sum float64
	for i := 0; i < n; i++ {
		sum += masses[i%len(masses)]
	}
	tm := &TrafficMatrix{Hosts: hosts, Rate: make([][]float64, n)}
	for i := range tm.Rate {
		tm.Rate[i] = make([]float64, n)
		for j := range tm.Rate[i] {
			if i == j {
				continue
			}
			mi := masses[i%len(masses)]
			mj := masses[j%len(masses)]
			tm.Rate[i][j] = totalBytesPerSec * (mi / sum) * (mj / sum)
		}
	}
	return tm
}

// FlowsFromTM converts a traffic matrix into individual flows, assuming
// Poisson flow inter-arrivals per OD pair and exponentially distributed
// flow sizes around meanFlowBytes, partitioning the matrix demand evenly —
// the paper's own methodology for Abilene/Geant/Quest (§8.1.3). The result
// is returned as single-flow jobs sorted by arrival.
func FlowsFromTM(rng *rand.Rand, tm *TrafficMatrix, duration time.Duration, meanFlowBytes float64) []Job {
	var jobs []Job
	id := 0
	secs := duration.Seconds()
	for i, row := range tm.Rate {
		for j, rate := range row {
			if rate <= 0 {
				continue
			}
			flowsPerSec := rate / meanFlowBytes
			t := 0.0
			for {
				t += rng.ExpFloat64() / flowsPerSec
				if t >= secs {
					break
				}
				bytes := rng.ExpFloat64() * meanFlowBytes
				if bytes < 1500 {
					bytes = 1500 // at least one MTU
				}
				jobs = append(jobs, Job{
					ID:      id,
					Arrival: time.Duration(t * float64(time.Second)),
					Flows:   []FlowSpec{{Src: tm.Hosts[i], Dst: tm.Hosts[j], Bytes: bytes}},
				})
				id++
			}
		}
	}
	sortJobs(jobs)
	for i := range jobs {
		jobs[i].ID = i
	}
	return jobs
}

func sortJobs(jobs []Job) {
	// Insertion sort on arrival; inputs are near-sorted per OD pair and
	// modest in size, and the result must be deterministic.
	for i := 1; i < len(jobs); i++ {
		for j := i; j > 0 && jobs[j].Arrival < jobs[j-1].Arrival; j-- {
			jobs[j], jobs[j-1] = jobs[j-1], jobs[j]
		}
	}
}

// TimedRule is one control-plane insertion at a virtual time.
type TimedRule struct {
	At   time.Duration
	Rule classifier.Rule
}

// MicroBenchConfig parameterizes the §8 microbenchmark rule streams along
// the paper's three dimensions: arrival rate, overlap rate, and priorities.
type MicroBenchConfig struct {
	// Rules is the stream length.
	Rules int
	// RatePerSec is the mean insertion arrival rate (Poisson).
	RatePerSec float64
	// OverlapFrac in [0,1] is the fraction of rules that overlap
	// previously generated rules (1.0 reproduces the paper's "100%
	// overlap rate").
	OverlapFrac float64
	// MaxPriority bounds the uniformly drawn rule priorities.
	MaxPriority int32
	// FirstID numbers the generated rules starting here (default 1).
	FirstID classifier.RuleID
}

// MicroBench generates a rule-insertion stream. Overlapping rules nest
// inside (or envelop) an earlier rule's destination prefix with priorities
// chosen so that the overlap does real work — the paper's overlap-rate
// dimension exists "to understand the impact of partitioning":
//
//   - a child rule (narrower prefix) gets a priority *above* its base, so
//     it is installed whole and legitimately shadows the base's region;
//   - a parent rule (wider prefix) gets a priority *below* its base, so
//     Algorithm 1 must cut it around the base when the base has reached
//     the main table.
//
// Fresh (non-overlapping) rules take priorities in [MaxPriority,
// 2·MaxPriority); child/parent offsets keep all priorities within
// (0, 3·MaxPriority).
func MicroBench(rng *rand.Rand, cfg MicroBenchConfig) []TimedRule {
	if cfg.Rules <= 0 {
		return nil
	}
	if cfg.MaxPriority <= 0 {
		cfg.MaxPriority = 100
	}
	id := cfg.FirstID
	if id == 0 {
		id = 1
	}
	type placed struct {
		prefix classifier.Prefix
		prio   int32
	}
	var out []TimedRule
	var prior []placed
	now := 0.0
	nextFresh := uint32(0)
	maxOffset := cfg.MaxPriority/4 + 1
	for i := 0; i < cfg.Rules; i++ {
		now += rng.ExpFloat64() / cfg.RatePerSec
		var p classifier.Prefix
		var prio int32
		if len(prior) > 0 && rng.Float64() < cfg.OverlapFrac {
			base := prior[rng.Intn(len(prior))]
			switch {
			case base.prefix.Len < 30 && rng.Intn(2) == 0:
				// Child: narrower and higher priority.
				extra := uint8(1 + rng.Intn(4))
				if base.prefix.Len+extra > 32 {
					extra = 32 - base.prefix.Len
				}
				addr := base.prefix.Addr | (rng.Uint32() & ^base.prefix.Mask())
				p = classifier.NewPrefix(addr, base.prefix.Len+extra)
				prio = base.prio + 1 + rng.Int31n(maxOffset)
			case base.prefix.Len > 9:
				// Parent: wider and lower priority (forces partitioning).
				p = classifier.NewPrefix(base.prefix.Addr, base.prefix.Len-uint8(1+rng.Intn(4)))
				prio = base.prio - 1 - rng.Int31n(maxOffset)
			default:
				p = base.prefix
				prio = base.prio + 1
			}
			if prio < 1 {
				prio = 1
			}
			if prio >= 3*cfg.MaxPriority {
				prio = 3*cfg.MaxPriority - 1
			}
		} else {
			// Fresh disjoint /24 out of a dedicated pool, mid-band priority.
			p = classifier.NewPrefix(0x0A000000|nextFresh<<8, 24)
			nextFresh++
			prio = cfg.MaxPriority + rng.Int31n(cfg.MaxPriority)
		}
		prior = append(prior, placed{p, prio})
		out = append(out, TimedRule{
			At: time.Duration(now * float64(time.Second)),
			Rule: classifier.Rule{
				ID:       id,
				Match:    classifier.DstMatch(p),
				Priority: prio,
				Action:   classifier.Action{Type: classifier.ActionForward, Port: int(id % 48)},
			},
		})
		id++
	}
	return out
}
