package workload

import (
	"math/rand"
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/topo"
)

func hostIDs(n int) []topo.NodeID {
	out := make([]topo.NodeID, n)
	for i := range out {
		out[i] = topo.NodeID(i)
	}
	return out
}

func TestFacebookJobsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	jobs := FacebookJobs(rng, FacebookConfig{Jobs: 500, Duration: time.Hour, Hosts: hostIDs(64)})
	if len(jobs) == 0 {
		t.Fatal("no jobs")
	}
	short, long := 0, 0
	var prev time.Duration
	for _, j := range jobs {
		if j.Arrival < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = j.Arrival
		if len(j.Flows) == 0 {
			t.Fatal("job without flows")
		}
		if j.TotalBytes() <= 0 {
			t.Fatal("non-positive job size")
		}
		for _, f := range j.Flows {
			if f.Src == f.Dst {
				t.Fatal("self flow")
			}
			if f.Bytes <= 0 {
				t.Fatal("non-positive flow")
			}
		}
		if j.Short() {
			short++
		} else {
			long++
		}
	}
	// Heavy-tailed: most jobs short, a real minority long.
	if short <= long {
		t.Errorf("short=%d long=%d; expected mostly short jobs", short, long)
	}
	if long == 0 {
		t.Error("no long jobs at all; tail missing")
	}
}

func TestFacebookJobsDeterministic(t *testing.T) {
	a := FacebookJobs(rand.New(rand.NewSource(7)), FacebookConfig{Jobs: 50, Duration: time.Minute, Hosts: hostIDs(16)})
	b := FacebookJobs(rand.New(rand.NewSource(7)), FacebookConfig{Jobs: 50, Duration: time.Minute, Hosts: hostIDs(16)})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].TotalBytes() != b[i].TotalBytes() {
			t.Fatal("not deterministic")
		}
	}
}

func TestFacebookJobsEmptyInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if jobs := FacebookJobs(rng, FacebookConfig{Jobs: 0, Duration: time.Minute, Hosts: hostIDs(4)}); jobs != nil {
		t.Error("zero jobs must return nil")
	}
	if jobs := FacebookJobs(rng, FacebookConfig{Jobs: 5, Duration: time.Minute, Hosts: hostIDs(1)}); jobs != nil {
		t.Error("single host must return nil")
	}
}

func TestGravityTM(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	hosts := hostIDs(12)
	total := 1e9
	tm := GravityTM(rng, hosts, total)
	var sum float64
	for i, row := range tm.Rate {
		if tm.Rate[i][i] != 0 {
			t.Error("diagonal must be zero")
		}
		for _, r := range row {
			if r < 0 {
				t.Fatal("negative rate")
			}
			sum += r
		}
	}
	// Gravity model conserves total mass up to the removed diagonal.
	if sum <= 0.3*total || sum > total {
		t.Errorf("total demand = %v, want within (0.3, 1]x%v", sum, total)
	}
}

func TestAbileneTM(t *testing.T) {
	hosts := hostIDs(11)
	tm := AbileneTM(hosts, 1e9)
	if len(tm.Rate) != 11 {
		t.Fatal("dimension")
	}
	// NYC (index 0, mass 3.0) must out-demand DEN (index 7, mass 0.9).
	var nyc, den float64
	for j := range hosts {
		nyc += tm.Rate[0][j]
		den += tm.Rate[7][j]
	}
	if nyc <= den {
		t.Errorf("NYC demand %v not above DEN %v", nyc, den)
	}
}

func TestFlowsFromTM(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	hosts := hostIDs(6)
	tm := GravityTM(rng, hosts, 5e8)
	jobs := FlowsFromTM(rng, tm, 10*time.Second, 10e6)
	if len(jobs) == 0 {
		t.Fatal("no flows")
	}
	var prev time.Duration
	var bytes float64
	for i, j := range jobs {
		if j.ID != i {
			t.Fatal("IDs not renumbered")
		}
		if len(j.Flows) != 1 {
			t.Fatal("TM jobs must be single-flow")
		}
		if j.Arrival < prev || j.Arrival > 10*time.Second {
			t.Fatalf("arrival %v out of order/range", j.Arrival)
		}
		prev = j.Arrival
		if j.Flows[0].Bytes < 1500 {
			t.Fatal("sub-MTU flow")
		}
		bytes += j.Flows[0].Bytes
	}
	// Generated volume should be in the ballpark of demand x duration.
	want := 5e8 * 10 * 0.75 // gravity spreads < total because of diagonal removal
	if bytes < want/4 || bytes > want*4 {
		t.Errorf("total bytes = %v, want ≈ %v", bytes, want)
	}
}

func TestMicroBenchRate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	stream := MicroBench(rng, MicroBenchConfig{Rules: 2000, RatePerSec: 1000, OverlapFrac: 0})
	if len(stream) != 2000 {
		t.Fatalf("len = %d", len(stream))
	}
	span := stream[len(stream)-1].At.Seconds()
	rate := float64(len(stream)) / span
	if rate < 800 || rate > 1200 {
		t.Errorf("empirical rate = %.0f, want ≈1000", rate)
	}
	// Zero overlap: all prefixes pairwise disjoint.
	for i := 0; i < 200; i++ {
		for j := i + 1; j < 200; j++ {
			if stream[i].Rule.Match.Dst.Overlaps(stream[j].Rule.Match.Dst) {
				t.Fatalf("rules %d and %d overlap with OverlapFrac=0", i, j)
			}
		}
	}
}

func TestMicroBenchOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	stream := MicroBench(rng, MicroBenchConfig{Rules: 400, RatePerSec: 1000, OverlapFrac: 1.0})
	overlapping := 0
	for i := 1; i < len(stream); i++ {
		for j := 0; j < i; j++ {
			if stream[i].Rule.Match.Dst.Overlaps(stream[j].Rule.Match.Dst) {
				overlapping++
				break
			}
		}
	}
	// With 100% overlap rate, nearly every rule after the first overlaps.
	if float64(overlapping) < 0.95*float64(len(stream)-1) {
		t.Errorf("only %d/%d rules overlap at OverlapFrac=1", overlapping, len(stream)-1)
	}
}

func TestMicroBenchIDsAndPriorities(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	stream := MicroBench(rng, MicroBenchConfig{
		Rules: 100, RatePerSec: 100, OverlapFrac: 0.5, MaxPriority: 10, FirstID: 500,
	})
	seen := map[int64]bool{}
	for i, tr := range stream {
		if tr.Rule.ID != 500+classifier.RuleID(i) {
			t.Fatalf("rule %d has ID %d", i, tr.Rule.ID)
		}
		if tr.Rule.Priority < 1 || tr.Rule.Priority >= 30 {
			t.Fatalf("priority %d out of [1, 3*MaxPriority)", tr.Rule.Priority)
		}
		seen[int64(tr.Rule.ID)] = true
	}
	if len(seen) != 100 {
		t.Error("duplicate IDs")
	}
	if MicroBench(rng, MicroBenchConfig{Rules: 0, RatePerSec: 1}) != nil {
		t.Error("empty config must return nil")
	}
}

// TestMicroBenchOverlapPriorities encodes the generator's contract: child
// rules out-prioritize the rules they nest into, parent rules sit below.
func TestMicroBenchOverlapPriorities(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	stream := MicroBench(rng, MicroBenchConfig{Rules: 300, RatePerSec: 500, OverlapFrac: 1.0, MaxPriority: 64})
	children, parents := 0, 0
	for i := 1; i < len(stream); i++ {
		ri := stream[i].Rule
		for j := 0; j < i; j++ {
			rj := stream[j].Rule
			if rj.Match.Dst.Contains(ri.Match.Dst) && rj.Match.Dst.Len < ri.Match.Dst.Len && ri.Priority > rj.Priority {
				children++
				break
			}
			if ri.Match.Dst.Contains(rj.Match.Dst) && ri.Match.Dst.Len < rj.Match.Dst.Len && ri.Priority < rj.Priority {
				parents++
				break
			}
		}
	}
	if children == 0 || parents == 0 {
		t.Errorf("children=%d parents=%d; both overlap directions must occur", children, parents)
	}
}
