package workload

import "math/rand"

// This file holds the seeded randomness substrate shared by the workload
// generators and the loadgen subsystem: SplitMix64 sub-stream derivation
// (so independent generators never perturb each other's draws) and a
// heavy-tailed Zipf flow-popularity sampler. Everything here is
// deterministic given (seed, label) — the package is covered by the
// determinism analyzer, so no wall clocks and no global math/rand.

// SubSeed derives an independent stream seed from a root seed and a
// stream label using the SplitMix64 finalizer — the same construction
// internal/faultinject uses for its fault schedules. Two labels give
// streams whose draws are statistically independent, so consuming more
// values on one stream never shifts another stream's schedule.
func SubSeed(root int64, label uint64) int64 {
	z := uint64(root) + 0x9E3779B97F4A7C15*(label+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// SubStream returns a *rand.Rand seeded with SubSeed(root, label).
func SubStream(root int64, label uint64) *rand.Rand {
	return rand.New(rand.NewSource(SubSeed(root, label)))
}

// Zipf samples flow indexes in [0, n) with P(k) ∝ 1/(v+k)^s — the
// heavy-tailed flow-popularity model of FDRC-style rule-caching studies:
// a few elephant flows recur constantly while a long tail of mice appears
// once. Index 0 is the most popular flow. Deterministic given its rng.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf builds a sampler over n flows with skew s (> 1; values nearer 1
// give longer tails) and offset v (≥ 1). Out-of-range parameters are
// clamped rather than rejected so sweeps can approach the s→1 boundary
// safely. n must be ≥ 1.
func NewZipf(rng *rand.Rand, s, v float64, n uint64) *Zipf {
	if s <= 1 {
		s = 1.0001
	}
	if v < 1 {
		v = 1
	}
	if n < 1 {
		n = 1
	}
	return &Zipf{z: rand.NewZipf(rng, s, v, n-1)}
}

// Next draws the next flow index.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }
