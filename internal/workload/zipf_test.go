package workload

import "testing"

func TestSubSeedIndependentStreams(t *testing.T) {
	if SubSeed(1, 0) == SubSeed(1, 1) {
		t.Fatal("adjacent labels produced the same seed")
	}
	if SubSeed(1, 0) == SubSeed(2, 0) {
		t.Fatal("different roots produced the same seed")
	}
	// Consuming extra draws on one stream must not shift another.
	a := SubStream(7, 3)
	b := SubStream(7, 4)
	for i := 0; i < 100; i++ {
		a.Uint64()
	}
	b2 := SubStream(7, 4)
	for i := 0; i < 16; i++ {
		if b.Uint64() != b2.Uint64() {
			t.Fatal("stream 4 perturbed by draws on stream 3")
		}
	}
}

func TestZipfDeterministic(t *testing.T) {
	draw := func() []uint64 {
		z := NewZipf(SubStream(42, 9), 1.2, 1, 1<<20)
		out := make([]uint64, 64)
		for i := range out {
			out[i] = z.Next()
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %d != %d with same seed", i, a[i], b[i])
		}
	}
	c := NewZipf(SubStream(43, 9), 1.2, 1, 1<<20)
	same := true
	for i := range a {
		if c.Next() != a[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestZipfHeavyTail(t *testing.T) {
	const n, draws = 100000, 200000
	z := NewZipf(SubStream(1, 0), 1.2, 1, n)
	counts := make(map[uint64]int)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Rank order: flow 0 must dominate a deep-tail flow by a wide margin.
	if counts[0] < 100*counts[n/2]+1 {
		t.Fatalf("no head: count(0)=%d count(mid)=%d", counts[0], counts[n/2])
	}
	// Heavy tail: the top 10 flows carry a large share, yet thousands of
	// distinct mice still appear.
	var top int
	for k := uint64(0); k < 10; k++ {
		top += counts[k]
	}
	if float64(top)/draws < 0.25 {
		t.Fatalf("top-10 share %.3f too small for s=1.2", float64(top)/draws)
	}
	if len(counts) < 1000 {
		t.Fatalf("only %d distinct flows drawn; tail collapsed", len(counts))
	}
}

func TestZipfParameterClamping(t *testing.T) {
	// s ≤ 1, v < 1 and n = 0 must clamp, not panic.
	z := NewZipf(SubStream(1, 1), 0.5, 0, 0)
	for i := 0; i < 100; i++ {
		if got := z.Next(); got != 0 {
			t.Fatalf("n=1 sampler drew %d", got)
		}
	}
}
