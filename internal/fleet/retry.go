package fleet

import (
	"math/rand"
	"time"
)

// RetryPolicy shapes the exponential backoff applied to insertions the
// Gate Keeper diverts off the guaranteed path (rate-limited or
// shadow-full, §5.2). The diverted rule sits in the main table; a retry
// deletes it and re-inserts after the backoff, giving the token bucket
// time to refill or the Rule Manager time to drain the shadow table.
type RetryPolicy struct {
	// MaxAttempts bounds total insert attempts (first try included).
	// 1 disables retries. Defaults to 4.
	MaxAttempts int
	// BaseDelay is the first backoff. Defaults to 5ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth. Defaults to 250ms.
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor. Defaults to 2.
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized, in [0, 1]:
	// the sleep is delay * (1 - Jitter/2 + Jitter*U[0,1)). Defaults to 0.2.
	Jitter float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.2
	}
	return p
}

// backoff walks one op's retry schedule. Jitter comes from a private RNG
// seeded deterministically (fleet seed ⊕ switch ⊕ rule), so a given
// workload replays the exact same schedule run after run.
type backoff struct {
	policy  RetryPolicy
	rng     *rand.Rand
	attempt int // completed attempts
}

func (p RetryPolicy) newBackoff(seed int64) *backoff {
	return &backoff{policy: p.withDefaults(), rng: rand.New(rand.NewSource(seed))}
}

// next returns the delay to wait before the following attempt, or ok=false
// when the attempt budget is spent.
func (b *backoff) next() (time.Duration, bool) {
	b.attempt++
	if b.attempt >= b.policy.MaxAttempts {
		return 0, false
	}
	d := float64(b.policy.BaseDelay)
	for i := 1; i < b.attempt; i++ {
		d *= b.policy.Multiplier
	}
	if max := float64(b.policy.MaxDelay); d > max {
		d = max
	}
	if j := b.policy.Jitter; j > 0 {
		d *= 1 - j/2 + j*b.rng.Float64()
	}
	return time.Duration(d), true
}

// fnv64a hashes a string with FNV-1a; used for deterministic per-switch
// seeds and for consistent rule→switch routing.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
