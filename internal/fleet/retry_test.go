package fleet

import (
	"sync"
	"testing"
	"time"
)

// TestBackoffDeterministic: the same seed replays the identical jittered
// schedule; a different seed diverges.
func TestBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, Multiplier: 2, Jitter: 0.5}
	schedule := func(seed int64) []time.Duration {
		bo := p.newBackoff(seed)
		var ds []time.Duration
		for {
			d, ok := bo.next()
			if !ok {
				break
			}
			ds = append(ds, d)
		}
		return ds
	}
	a, b := schedule(42), schedule(42)
	if len(a) != p.MaxAttempts-1 {
		t.Fatalf("schedule length = %d, want %d", len(a), p.MaxAttempts-1)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical jitter")
	}
}

// TestBackoffGrowthAndCap: delays grow roughly exponentially and respect
// MaxDelay even with jitter.
func TestBackoffGrowthAndCap(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond,
		MaxDelay: 8 * time.Millisecond, Multiplier: 2, Jitter: 0.2}
	bo := p.newBackoff(1)
	var prev time.Duration
	for i := 0; ; i++ {
		d, ok := bo.next()
		if !ok {
			break
		}
		// Jitter scales by at most 1+J/2 = 1.1.
		if max := time.Duration(float64(p.MaxDelay) * 1.1); d > max {
			t.Fatalf("attempt %d: delay %v above cap %v", i, d, max)
		}
		if i > 0 && i < 3 && d < prev {
			t.Fatalf("attempt %d: delay %v shrank below %v before the cap", i, d, prev)
		}
		prev = d
	}
}

// TestBackoffNoJitter: zero-jitter schedules are exactly the exponential.
func TestBackoffNoJitter(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: 2 * time.Millisecond,
		MaxDelay: time.Second, Multiplier: 2, Jitter: -1} // invalid → default
	p = p.withDefaults()
	if p.Jitter != 0.2 {
		t.Fatalf("invalid jitter not defaulted: %v", p.Jitter)
	}
	p.Jitter = 0
	bo := p.newBackoff(9)
	want := []time.Duration{2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond}
	for i, w := range want {
		d, ok := bo.next()
		if !ok || d != w {
			t.Fatalf("attempt %d: got %v,%v want %v", i, d, ok, w)
		}
	}
	if _, ok := bo.next(); ok {
		t.Error("backoff exceeded MaxAttempts")
	}
}

// TestBackoffTableDeterminism: across a table of policies and seeds, the
// schedule is a pure function of (policy, seed) — identical on replay,
// the documented length, never above the jitter-adjusted cap, and never
// below the jitter-adjusted floor of the uncapped exponential.
func TestBackoffTableDeterminism(t *testing.T) {
	cases := []struct {
		name string
		p    RetryPolicy
		seed int64
	}{
		{"defaults", RetryPolicy{}, 1},
		{"zero-jitter", RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond,
			MaxDelay: time.Second, Multiplier: 3, Jitter: 0}, 7},
		{"full-jitter", RetryPolicy{MaxAttempts: 8, BaseDelay: 2 * time.Millisecond,
			MaxDelay: 100 * time.Millisecond, Multiplier: 2, Jitter: 1}, 42},
		{"tight-cap", RetryPolicy{MaxAttempts: 12, BaseDelay: 10 * time.Millisecond,
			MaxDelay: 15 * time.Millisecond, Multiplier: 4, Jitter: 0.2}, -9},
		{"no-growth", RetryPolicy{MaxAttempts: 6, BaseDelay: 5 * time.Millisecond,
			MaxDelay: time.Second, Multiplier: 1, Jitter: 0.5}, 1 << 40},
		{"single-attempt", RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond}, 3},
	}
	schedule := func(p RetryPolicy, seed int64) []time.Duration {
		bo := p.newBackoff(seed)
		var ds []time.Duration
		for {
			d, ok := bo.next()
			if !ok {
				return ds
			}
			ds = append(ds, d)
		}
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := schedule(tc.p, tc.seed), schedule(tc.p, tc.seed)
			p := tc.p.withDefaults()
			if want := p.MaxAttempts - 1; len(a) != want {
				t.Fatalf("schedule length = %d, want %d", len(a), want)
			}
			ceil := time.Duration(float64(p.MaxDelay) * (1 + p.Jitter/2))
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
				}
				if a[i] > ceil {
					t.Fatalf("attempt %d: %v above jittered cap %v", i, a[i], ceil)
				}
				exp := float64(p.BaseDelay)
				for j := 0; j < i; j++ {
					exp *= p.Multiplier
				}
				if max := float64(p.MaxDelay); exp > max {
					exp = max
				}
				if floor := time.Duration(exp * (1 - p.Jitter/2)); a[i] < floor {
					t.Fatalf("attempt %d: %v below jittered floor %v", i, a[i], floor)
				}
			}
		})
	}
}

// TestBreakerConcurrentHalfOpenProbe: run with -race. Concurrent allow
// callers hammer the breaker while one goroutine walks it through
// failure → open → half-open probe → success; the breaker must stay
// data-race-free and end closed with exactly one trip recorded.
func TestBreakerConcurrentHalfOpenProbe(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 2, OpenTimeout: 10 * time.Millisecond})
	now := time.Unix(2000, 0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Mixed readers and failure writers racing the lifecycle
				// walker below.
				b.allow()
				b.snapshot()
				if g%4 == 0 {
					b.failure(now)
				}
			}
		}(g)
	}

	// Lifecycle under fire: force open, wait out the open timeout in
	// virtual time, probe, close.
	b.failure(now)
	b.failure(now)
	if st, _ := b.snapshot(); st != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", st)
	}
	if b.allow() {
		t.Fatal("ops allowed while open")
	}
	// The concurrent failure writers keep re-opening from half-open, so
	// retry the probe transition until the walker wins the race; with the
	// writers stopped it must succeed deterministically.
	close(stop)
	wg.Wait()
	if !b.allowProbe(now.Add(20 * time.Millisecond)) {
		t.Fatal("probe refused after open timeout")
	}
	if st, _ := b.snapshot(); st != BreakerHalfOpen {
		t.Fatalf("state after probe window = %v, want half-open", st)
	}
	if b.allow() {
		t.Fatal("ops allowed while half-open")
	}
	b.success()
	if !b.allow() {
		t.Fatal("breaker not closed after probe success")
	}
	if st, trips := b.snapshot(); st != BreakerClosed || trips == 0 {
		t.Fatalf("final state=%v trips=%d, want closed with recorded trips", st, trips)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 3, OpenTimeout: 50 * time.Millisecond})
	now := time.Unix(1000, 0)
	if !b.allow() {
		t.Fatal("new breaker not closed")
	}
	b.failure(now)
	b.failure(now)
	if !b.allow() {
		t.Fatal("breaker opened below threshold")
	}
	b.failure(now)
	if b.allow() {
		t.Fatal("breaker closed at threshold")
	}
	if st, trips := b.snapshot(); st != BreakerOpen || trips != 1 {
		t.Fatalf("state=%v trips=%d", st, trips)
	}
	// Probes are refused until the open timeout elapses.
	if b.allowProbe(now.Add(10 * time.Millisecond)) {
		t.Fatal("probe allowed while open")
	}
	if !b.allowProbe(now.Add(60 * time.Millisecond)) {
		t.Fatal("probe refused after open timeout")
	}
	if st, _ := b.snapshot(); st != BreakerHalfOpen {
		t.Fatalf("state after probe window = %v", st)
	}
	if b.allow() {
		t.Fatal("ops allowed while half-open")
	}
	// A failed probe re-opens immediately (single strike).
	b.failure(now.Add(61 * time.Millisecond))
	if st, trips := b.snapshot(); st != BreakerOpen || trips != 2 {
		t.Fatalf("after half-open failure: state=%v trips=%d", st, trips)
	}
	// A successful probe closes the circuit.
	if !b.allowProbe(now.Add(200 * time.Millisecond)) {
		t.Fatal("second probe refused")
	}
	b.success()
	if !b.allow() {
		t.Fatal("breaker not closed after probe success")
	}
}

func TestBreakerStateString(t *testing.T) {
	for _, s := range []BreakerState{BreakerClosed, BreakerOpen, BreakerHalfOpen, BreakerState(9)} {
		if s.String() == "" {
			t.Errorf("empty string for state %d", int(s))
		}
	}
	e := &CircuitOpenError{Switch: "tor-3"}
	if e.Error() == "" {
		t.Error("empty circuit-open error")
	}
}
