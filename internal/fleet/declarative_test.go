package fleet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/intent"
)

// declTarget adapts a live Fleet to the reconciler's Target seam — the
// same shape cmd/hermes-fleetd wires in declarative mode. An open breaker
// reads as not-ready so the controller backs off instead of burning RPCs.
type declTarget struct{ f *Fleet }

func (t declTarget) Ready(sw string) bool {
	st, err := t.f.BreakerState(sw)
	return err == nil && st != BreakerOpen
}

func (t declTarget) Observe(sw string) ([]classifier.Rule, error) {
	return t.f.ObservedRules(sw)
}

func (t declTarget) Apply(sw string, op intent.Op) error {
	var res OpResult
	switch op.Kind {
	case intent.OpInsert:
		res = t.f.Insert(sw, op.Rule)
	case intent.OpModify:
		res = t.f.Modify(sw, op.Rule)
	case intent.OpDelete:
		res = t.f.Delete(sw, op.Rule.ID)
	}
	return res.Err
}

// TestDeclarativeReconcileOverFleet: the intent controller in goroutine
// mode drives a live 3-agent fleet to its desired set, survives a switch
// being killed (breaker opens, key backs off), and — once the agent
// restarts with empty tables — the reconnect trigger reinstalls the full
// partition without any imperative replay.
func TestDeclarativeReconcileOverFleet(t *testing.T) {
	specs, servers := startAgents(t, 3, core.Config{DisableRateLimit: true})
	var hookMu sync.Mutex
	var hookFn func(string)
	f, err := New(Config{
		BatchSize:     4,
		ProbeInterval: 20 * time.Millisecond,
		Breaker:       BreakerConfig{FailureThreshold: 2, OpenTimeout: 50 * time.Millisecond},
		OnReconnect: func(sw string) {
			hookMu.Lock()
			fn := hookFn
			hookMu.Unlock()
			if fn != nil {
				fn(sw)
			}
		},
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	start := time.Now()
	store := intent.NewStore(f.Route)
	ctrl, err := intent.New(intent.Config{
		Switches: f.Switches(),
		Shards:   2,
		ID:       "test",
		Store:    store,
		Target:   declTarget{f},
		Now:      func() time.Duration { return time.Since(start) },
		Resync:   50 * time.Millisecond,
		RateLimit: intent.RateLimit{Base: 5 * time.Millisecond,
			Max: 50 * time.Millisecond, Multiplier: 2, Jitter: 0.2},
		Permanent: func(err error) bool { return errors.Is(err, ErrFleetClosed) },
	})
	if err != nil {
		t.Fatal(err)
	}
	hookMu.Lock()
	hookFn = func(sw string) { ctrl.MarkDirty(sw, intent.DirtyReconnect) }
	hookMu.Unlock()
	ctrl.Run()
	defer ctrl.Close()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	converged := func() bool {
		gen := store.Generation()
		for _, sw := range f.Switches() {
			if g, ok := ctrl.ConvergedGeneration(sw); !ok || g != gen {
				return false
			}
		}
		return true
	}
	zeroDiff := func(sw string) bool {
		desired, _ := store.Desired(sw)
		observed, err := f.ObservedRules(sw)
		return err == nil && len(intent.Diff(desired, observed)) == 0
	}

	// Declare the initial set and let the controller install it.
	for i := 1; i <= 30; i++ {
		store.Set(testRule(i))
	}
	waitFor("initial convergence", converged)
	for _, sw := range f.Switches() {
		if !zeroDiff(sw) {
			t.Fatalf("%s differs from desired after convergence", sw)
		}
	}

	// Kill one agent: its breaker opens and its key backs off, while
	// churn routed to live switches keeps converging.
	victim := specs[1]
	servers[1].Close() //nolint:errcheck
	waitFor("breaker open on killed switch", func() bool {
		st, err := f.BreakerState(victim.ID)
		return err == nil && st == BreakerOpen
	})
	for i := 31; i <= 45; i++ {
		store.Set(testRule(i))
	}
	waitFor("live switches converging past the dead one", func() bool {
		gen := store.Generation()
		for _, sw := range f.Switches() {
			if sw == victim.ID {
				continue
			}
			if g, ok := ctrl.ConvergedGeneration(sw); !ok || g != gen {
				return false
			}
		}
		return true
	})
	if g, _ := ctrl.ConvergedGeneration(victim.ID); g == store.Generation() {
		t.Fatal("dead switch claims convergence at the latest generation")
	}

	// Restart the agent empty: the probe redials, the reconnect hook
	// marks the key dirty, and the reconciler reinstalls the whole
	// partition — the level-triggered self-heal, no replay needed.
	restartAgent(t, victim.Addr)
	waitFor("full reconvergence after restart", func() bool {
		return converged() && zeroDiff(victim.ID)
	})
	desired, _ := store.Desired(victim.ID)
	if len(desired) == 0 {
		t.Fatal("victim partition empty; test routed it no rules")
	}
	if err, dead := ctrl.Halted(victim.ID); dead {
		t.Fatalf("victim halted (%v); a restartable switch must stay transient", err)
	}
}
