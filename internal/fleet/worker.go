package fleet

import (
	"errors"
	"sort"
	"sync"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/obs"
	"hermes/internal/ofwire"
)

type opKind uint8

const (
	opInsert opKind = iota + 1
	opDelete
	opModify
)

// op is one queued flow-mod.
type op struct {
	kind opKind
	rule classifier.Rule
	done chan OpResult
}

// OpResult is the outcome of one fleet operation.
type OpResult struct {
	Switch   string
	RuleID   classifier.RuleID
	Result   ofwire.FlowModResult
	Attempts int
	Err      error
}

// worker owns one switch: its control channel, bounded flow-mod queue,
// circuit breaker, health probes, and telemetry. All flow-mods for the
// switch funnel through its queue; the worker dispatches them in batches
// over the pipelined client so several stay in flight on the wire.
type worker struct {
	id   string
	addr string
	f    *Fleet

	queue chan *op
	stop  chan struct{}

	// emu guards stopped and fences in-flight enqueues against Close.
	emu     sync.RWMutex
	stopped bool

	// cmu guards client replacement on reconnect.
	cmu    sync.Mutex
	client *ofwire.Client

	// rmu guards desired: the rules this worker has successfully applied,
	// keyed by ID. It is the controller-side desired state replayed onto a
	// restarted (and therefore empty) agent during resync.
	rmu     sync.Mutex
	desired map[classifier.RuleID]classifier.Rule

	brk  *breaker
	tele switchTelemetry
	wg   sync.WaitGroup

	// Optional obs instruments (set by registerObs before start); attached
	// to every client this worker dials so RTT and in-flight accounting
	// survive reconnects.
	inflight *obs.Gauge
	rtt      *obs.Histogram
}

func newWorker(f *Fleet, spec SwitchSpec, client *ofwire.Client) *worker {
	w := &worker{
		id:      spec.ID,
		addr:    spec.Addr,
		f:       f,
		queue:   make(chan *op, f.cfg.QueueDepth),
		stop:    make(chan struct{}),
		client:  client,
		desired: make(map[classifier.RuleID]classifier.Rule),
		brk:     newBreaker(f.cfg.Breaker),
	}
	registerObs(f.cfg.Obs, w)
	client.Instrument(w.inflight, w.rtt)
	return w
}

func (w *worker) start() {
	w.wg.Add(2)
	go w.run()
	go w.probeLoop()
}

func (w *worker) currentClient() *ofwire.Client {
	w.cmu.Lock()
	defer w.cmu.Unlock()
	return w.client
}

// setClient swaps in a freshly dialed client, closing the old one. Refused
// after shutdown begins (the replacement is closed instead).
func (w *worker) setClient(c *ofwire.Client) {
	w.emu.RLock()
	stopped := w.stopped
	w.emu.RUnlock()
	if stopped {
		c.Close()
		return
	}
	w.cmu.Lock()
	old := w.client
	w.client = c
	w.cmu.Unlock()
	if old != nil {
		old.Close()
	}
}

// enqueue adds one op to the bounded queue, blocking for backpressure when
// the queue is full.
func (w *worker) enqueue(o *op) error {
	w.emu.RLock()
	defer w.emu.RUnlock()
	if w.stopped {
		return ErrFleetClosed
	}
	select {
	case w.queue <- o:
		return nil
	//lint:ignore chanblock stop is close-only (no sender to rendezvous with) and Close releases emu before closing it; the run loop keeps draining queue until then, so the select always makes progress
	case <-w.stop:
		return ErrFleetClosed
	}
}

// run is the dispatch loop: pull a batch off the queue and issue every op
// in it concurrently; the pipelined client keeps them all in flight on the
// one connection.
func (w *worker) run() {
	defer w.wg.Done()
	for {
		select {
		case <-w.stop:
			w.drainFail()
			return
		case o := <-w.queue:
			if w.f.cfg.WireBatch {
				w.dispatchWire(w.gatherLinger(o))
				continue
			}
			batch := []*op{o}
			for len(batch) < w.f.cfg.BatchSize {
				select {
				case next := <-w.queue:
					batch = append(batch, next)
				default:
					goto full
				}
			}
		full:
			w.dispatch(batch)
		}
	}
}

// gatherLinger coalesces queued ops into one wire batch: it keeps pulling
// until the batch is full or BatchLinger elapses without it filling —
// size-or-deadline coalescing, so a trickle of ops still flushes promptly
// while a burst amortizes into one frame.
func (w *worker) gatherLinger(first *op) []*op {
	batch := []*op{first}
	t := time.NewTimer(w.f.cfg.BatchLinger)
	defer t.Stop()
	for len(batch) < w.f.cfg.BatchSize {
		select {
		case next := <-w.queue:
			batch = append(batch, next)
		case <-t.C:
			return batch
		//lint:ignore chanblock stop is close-only; a closed stop just flushes the gathered batch before the run loop drains
		case <-w.stop:
			return batch
		}
	}
	return batch
}

func (w *worker) dispatch(batch []*op) {
	var wg sync.WaitGroup
	for _, o := range batch {
		o := o
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.complete(o, w.execute(o))
		}()
	}
	wg.Wait()
}

// dispatchWire applies one gathered batch as a single flow-mod-batch
// frame. The ops travel in queue order and the agent applies the frame's
// entries in order under one lock acquisition, so per-rule FIFO is
// preserved: the queue is FIFO, one run loop gathers, and this method
// issues batches sequentially (never concurrently). Per-op outcomes are
// demuxed from the reply entries through the same complete() path the
// per-op dispatcher uses, so OnResult observers see exactly one callback
// per submitted op either way. Remote typed errors in an entry mean the
// switch is alive and do not count against the circuit; only wire-level
// failures trip it. RetryDiverted is deliberately not honored here (see
// Config.WireBatch).
func (w *worker) dispatchWire(batch []*op) {
	if !w.brk.allow() {
		for _, o := range batch {
			w.tele.fail()
			w.complete(o, OpResult{
				Switch: w.id, RuleID: o.rule.ID, Attempts: 1,
				Err: &CircuitOpenError{Switch: w.id},
			})
		}
		return
	}
	mods := make([]ofwire.FlowMod, len(batch))
	for i, o := range batch {
		cmd := ofwire.FlowAdd
		switch o.kind {
		case opDelete:
			cmd = ofwire.FlowDelete
		case opModify:
			cmd = ofwire.FlowModify
		}
		mods[i] = *ofwire.FlowModFromRule(cmd, o.rule)
	}
	results, err := w.currentClient().ApplyBatch(mods)
	if err == nil {
		w.brk.success()
	} else {
		var remote *ofwire.ErrorBody
		if !errors.As(err, &remote) {
			w.tele.fault(err)
			w.brk.failure(time.Now())
		}
	}
	for i, o := range batch {
		res := OpResult{Switch: w.id, RuleID: o.rule.ID, Attempts: 1}
		switch {
		case i < len(results) && results[i].Err == nil:
			res.Result = results[i].Result
			w.recordApplied(o)
			w.tele.observe(res.Result)
		case i < len(results) && results[i].Err != nil:
			// Per-op remote rejection: reported in its slot, the rest of
			// the batch stands.
			res.Err = results[i].Err
			w.tele.fail()
		default:
			// The wire failed before this op's chunk got a reply.
			res.Err = err
			w.tele.fail()
		}
		w.complete(o, res)
	}
}

// complete delivers one finished op: the completion hook (when configured)
// observes the result first, then the submitter's channel gets it.
func (w *worker) complete(o *op, res OpResult) {
	if h := w.f.cfg.OnResult; h != nil {
		h(res)
	}
	o.done <- res
}

// drainFail fails any ops still queued at shutdown.
func (w *worker) drainFail() {
	for {
		select {
		case o := <-w.queue:
			w.complete(o, OpResult{Switch: w.id, RuleID: o.rule.ID, Err: ErrFleetClosed})
		default:
			return
		}
	}
}

// execute performs one op, retrying guaranteed insertions the Gate Keeper
// diverted to the unguaranteed path: the diverted rule is deleted, the
// worker backs off (exponential + deterministic jitter), and the insert is
// reissued, giving the token bucket time to refill or the shadow table
// time to drain.
func (w *worker) execute(o *op) OpResult {
	res := OpResult{Switch: w.id, RuleID: o.rule.ID}
	seed := w.f.cfg.Seed ^ int64(fnv64a(w.id)) ^ int64(o.rule.ID)
	bo := w.f.cfg.Retry.newBackoff(seed)
	for {
		res.Attempts++
		if !w.brk.allow() {
			res.Err = &CircuitOpenError{Switch: w.id}
			w.tele.fail()
			return res
		}
		c := w.currentClient()
		var fr ofwire.FlowModResult
		var err error
		switch o.kind {
		case opInsert:
			fr, err = c.Insert(o.rule)
		case opDelete:
			fr, err = c.Delete(o.rule.ID)
		case opModify:
			fr, err = c.Modify(o.rule)
		}
		if err != nil {
			// Remote typed errors (duplicate rule, table full, …) are
			// application-level: the switch is alive, so they don't count
			// against the circuit.
			var remote *ofwire.ErrorBody
			if !errors.As(err, &remote) {
				w.tele.fault(err)
				w.brk.failure(time.Now())
			}
			res.Err = err
			w.tele.fail()
			return res
		}
		w.brk.success()
		if o.kind == opInsert && w.f.cfg.RetryDiverted &&
			!fr.Guaranteed && fr.Path == core.PathMain {
			w.tele.divert()
			if delay, ok := bo.next(); ok {
				if _, derr := c.Delete(o.rule.ID); derr == nil {
					w.tele.retry()
					select {
					case <-time.After(delay):
						continue
					case <-w.stop:
						res.Err = ErrFleetClosed
						return res
					}
				}
				// Could not undo the install; keep the diverted result.
			}
		}
		res.Result = fr
		w.recordApplied(o)
		w.tele.observe(fr)
		return res
	}
}

// recordApplied folds one successfully applied op into the desired-rule
// set the worker replays after a switch restart.
func (w *worker) recordApplied(o *op) {
	w.rmu.Lock()
	defer w.rmu.Unlock()
	switch o.kind {
	case opInsert, opModify:
		w.desired[o.rule.ID] = o.rule
	case opDelete:
		delete(w.desired, o.rule.ID)
	}
}

// probeLoop drives the circuit breaker with periodic echo probes and
// redials the switch once a dead connection is allowed to recover.
func (w *worker) probeLoop() {
	defer w.wg.Done()
	t := time.NewTicker(w.f.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			if !w.brk.allowProbe(time.Now()) {
				continue
			}
			w.probe()
		}
	}
}

func (w *worker) probe() {
	c := w.currentClient()
	if c == nil || c.Err() != nil {
		nc, err := w.f.dialClient(w.addr)
		if err != nil {
			w.tele.fault(err)
			w.brk.failure(time.Now())
			return
		}
		// Attach instruments before the resync replay so its round trips
		// are recorded too.
		nc.Instrument(w.inflight, w.rtt)
		// A reconnect means the switch may have restarted and lost its
		// tables; replay the desired state before the circuit can close
		// so no flow-mod lands on a half-recovered agent.
		if err := w.resync(nc); err != nil {
			w.tele.fault(err)
			w.brk.failure(time.Now())
			nc.Close()
			return
		}
		w.tele.reconnect()
		w.setClient(nc)
		if h := w.f.cfg.OnReconnect; h != nil {
			h(w.id)
		}
		c = w.currentClient()
	}
	if _, err := c.Echo([]byte("hermes-fleet-probe")); err != nil {
		w.tele.fault(err)
		w.brk.failure(time.Now())
		return
	}
	w.brk.success()
}

// resync replays the worker's applied-rule set onto a freshly dialed
// agent, in rule-ID order so replays are deterministic. Remote typed
// errors (duplicate rule: the agent kept or already recovered the rule)
// are tolerated; wire-level errors abort so the probe loop retries with a
// new connection.
func (w *worker) resync(c *ofwire.Client) error {
	w.rmu.Lock()
	rules := make([]classifier.Rule, 0, len(w.desired))
	for _, r := range w.desired {
		rules = append(rules, r)
	}
	w.rmu.Unlock()
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	replayed := 0
	for _, r := range rules {
		if _, err := c.Insert(r); err != nil {
			var remote *ofwire.ErrorBody
			if errors.As(err, &remote) {
				replayed++
				continue
			}
			w.tele.resynced(replayed)
			return err
		}
		replayed++
	}
	w.tele.resynced(replayed)
	return nil
}

// close tears the worker down: no new ops, queued ops failed, in-flight
// requests cut with ErrClientClosed, goroutines joined.
func (w *worker) close() error {
	w.emu.Lock()
	if w.stopped {
		w.emu.Unlock()
		return nil
	}
	w.stopped = true
	w.emu.Unlock()
	close(w.stop)
	err := w.currentClient().Close()
	w.wg.Wait()
	return err
}
