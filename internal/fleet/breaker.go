package fleet

import (
	"fmt"
	"sync"
	"time"
)

// BreakerConfig tunes the per-switch circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive connection-level
	// failures (flow-mods or health probes) that opens the circuit.
	// Defaults to 3.
	FailureThreshold int
	// OpenTimeout is how long the circuit stays open before a health
	// probe may test the switch again (half-open). Defaults to 500ms.
	OpenTimeout time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 500 * time.Millisecond
	}
	return c
}

// BreakerState is the circuit state of one switch.
type BreakerState int

// Circuit states.
const (
	// BreakerClosed: the switch is healthy, requests flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the switch is considered dead; requests fail fast.
	BreakerOpen
	// BreakerHalfOpen: the open timeout elapsed; a probe is testing the
	// switch while requests still fail fast.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// CircuitOpenError is the fail-fast error returned for operations on a
// switch whose circuit is open.
type CircuitOpenError struct {
	Switch string
}

func (e *CircuitOpenError) Error() string {
	return fmt.Sprintf("fleet: circuit open for switch %s", e.Switch)
}

// breaker is a classic closed → open → half-open circuit breaker. A dead
// or wedged agent trips it after FailureThreshold consecutive failures;
// from then on its worker fails operations immediately instead of
// stalling the fleet, until a health probe succeeds again.
type breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	trips    uint64
}

func newBreaker(cfg BreakerConfig) *breaker {
	return &breaker{cfg: cfg.withDefaults()}
}

// allow reports whether a regular operation may proceed.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == BreakerClosed
}

// allowProbe reports whether a health probe should run: always while
// closed, and once the open timeout has elapsed (transitioning to
// half-open) otherwise.
func (b *breaker) allowProbe(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed, BreakerHalfOpen:
		return true
	default: // BreakerOpen
		if now.Sub(b.openedAt) >= b.cfg.OpenTimeout {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	}
}

// success records a healthy round trip and closes the circuit.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.state = BreakerClosed
}

// failure records a connection-level failure, opening the circuit at the
// threshold (and immediately re-opening from half-open).
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == BreakerHalfOpen || b.fails >= b.cfg.FailureThreshold {
		if b.state != BreakerOpen {
			b.trips++
		}
		b.state = BreakerOpen
		b.openedAt = now
	}
}

// snapshot returns the current state and total trip count.
func (b *breaker) snapshot() (BreakerState, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips
}
