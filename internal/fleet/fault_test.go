package fleet

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hermes/internal/core"
	"hermes/internal/faultinject"
	"hermes/internal/ofwire"
	"hermes/internal/tcam"
	"hermes/internal/testutil"
)

// TestFleetReconnectResyncsRules: a switch restart wipes its tables; the
// probe loop must redial (through the Dial seam) and replay the worker's
// desired rules before the circuit closes, so the restarted agent
// converges to the controller's view — including rules deleted before the
// crash staying deleted.
func TestFleetReconnectResyncsRules(t *testing.T) {
	specs, servers := startAgents(t, 1, core.Config{DisableRateLimit: true})
	wire := faultinject.NewWire(faultinject.WireConfig{Seed: 9}) // passthrough plan
	f, err := New(Config{
		Dial:          wire.Dial,
		OpTimeout:     2 * time.Second,
		ProbeInterval: 20 * time.Millisecond,
		DialTimeout:   500 * time.Millisecond,
		Breaker:       BreakerConfig{FailureThreshold: 2, OpenTimeout: 50 * time.Millisecond},
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for i := 1; i <= 5; i++ {
		if res := f.Insert(specs[0].ID, testRule(i)); res.Err != nil {
			t.Fatalf("insert %d: %v", i, res.Err)
		}
	}
	// Rule 5 is deleted pre-crash: resync must not resurrect it.
	if res := f.Delete(specs[0].ID, 5); res.Err != nil {
		t.Fatalf("delete 5: %v", res.Err)
	}

	// Power-cycle the switch: the replacement agent starts empty.
	if err := servers[0].Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for f.Snapshot().Switches[0].Breaker != BreakerOpen {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened after switch death")
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv, err := ofwire.NewAgentServer("sw-0b", tcam.Pica8P3290,
		core.Config{Guarantee: 5 * time.Millisecond, DisableRateLimit: true})
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = t.Logf
	lis, err := net.Listen("tcp", specs[0].Addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", specs[0].Addr, err)
	}
	go srv.Serve(lis) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })

	deadline = time.Now().Add(10 * time.Second)
	for {
		res := f.Insert(specs[0].ID, testRule(6))
		if res.Err == nil {
			break
		}
		var open *CircuitOpenError
		if !errors.As(res.Err, &open) {
			t.Fatalf("unexpected error during recovery: %v", res.Err)
		}
		if time.Now().After(deadline) {
			t.Fatal("circuit never closed after switch restart")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Rules 1..4 were replayed by the resync: deleting each succeeds.
	for i := 1; i <= 4; i++ {
		if res := f.Delete(specs[0].ID, testRule(i).ID); res.Err != nil {
			t.Errorf("rule %d not resynced onto the restarted agent: %v", i, res.Err)
		}
	}
	// Rule 5 must have stayed deleted.
	res := f.Delete(specs[0].ID, 5)
	var remote *ofwire.ErrorBody
	if !errors.As(res.Err, &remote) || remote.Code != ofwire.ErrCodeUnknownRule {
		t.Errorf("rule 5 resurrected by resync: delete err = %v", res.Err)
	}

	snap := f.Snapshot()
	sw := snap.Switches[0]
	if sw.Reconnects == 0 {
		t.Error("no reconnects recorded")
	}
	if sw.Resyncs < 4 {
		t.Errorf("resyncs = %d, want >= 4", sw.Resyncs)
	}
	if sw.LastFault == "" {
		t.Error("no last-fault cause recorded for the outage")
	}
	if !strings.Contains(snap.Table().String(), "reconn") {
		t.Error("telemetry table lacks the reconnect column")
	}
	if n := wire.Counts().Total(); n != 0 {
		t.Errorf("passthrough wire plan injected %d faults", n)
	}
}

// TestFleetBreakerHalfOpenClosesAfterInjectedFaults: with every redial
// routed through a fault plan that resets the connection, health probes
// keep failing and the circuit cycles open → half-open → open; once the
// injected faults stop, the next half-open probe redials cleanly, resyncs,
// and closes the circuit.
func TestFleetBreakerHalfOpenClosesAfterInjectedFaults(t *testing.T) {
	specs, _ := startAgents(t, 1, core.Config{DisableRateLimit: true})
	wire := faultinject.NewWire(faultinject.WireConfig{Seed: 3, ResetProb: 1})
	var faulty atomic.Bool
	f, err := New(Config{
		Dial: func(network, addr string) (net.Conn, error) {
			if faulty.Load() {
				return wire.Dial(network, addr)
			}
			return net.DialTimeout(network, addr, time.Second)
		},
		ProbeInterval: 10 * time.Millisecond,
		Breaker:       BreakerConfig{FailureThreshold: 1, OpenTimeout: 30 * time.Millisecond},
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if res := f.Insert(specs[0].ID, testRule(1)); res.Err != nil {
		t.Fatalf("warmup insert: %v", res.Err)
	}

	// The control channel drops while the fault plan owns redials: every
	// half-open probe's fresh connection is reset during the hello
	// exchange, so the circuit keeps re-opening.
	faulty.Store(true)
	f.workers[specs[0].ID].currentClient().Close() //nolint:errcheck
	deadline := time.Now().Add(10 * time.Second)
	for f.Snapshot().Switches[0].Breaker != BreakerOpen {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened under injected resets")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var open *CircuitOpenError
	if res := f.Insert(specs[0].ID, testRule(2)); !errors.As(res.Err, &open) {
		t.Fatalf("open circuit did not fail fast: %v", res.Err)
	}

	// Lift the faults: the next half-open probe must close the circuit.
	faulty.Store(false)
	deadline = time.Now().Add(10 * time.Second)
	for {
		res := f.Insert(specs[0].ID, testRule(3))
		if res.Err == nil {
			break
		}
		if !errors.As(res.Err, &open) {
			t.Fatalf("unexpected error during recovery: %v", res.Err)
		}
		if time.Now().After(deadline) {
			t.Fatal("circuit never closed after faults stopped")
		}
		time.Sleep(10 * time.Millisecond)
	}

	snap := f.Snapshot()
	sw := snap.Switches[0]
	if sw.Breaker != BreakerClosed {
		t.Errorf("breaker = %v after recovery, want closed", sw.Breaker)
	}
	if sw.Trips == 0 {
		t.Error("no breaker trips recorded")
	}
	if wire.Counts().Resets == 0 {
		t.Error("fault plan injected no resets; the test exercised nothing")
	}
	if !strings.Contains(sw.LastFault, "injected connection reset") {
		t.Errorf("last fault = %q, want the injected reset cause", sw.LastFault)
	}
	if sw.Reconnects == 0 {
		t.Error("recovery did not record a reconnect")
	}
}

// TestFleetOpTimeoutFailsWedgedSwitch: OpTimeout bounds flow-mods on a
// switch that accepts the connection but never answers, so the fleet
// surfaces a deadline error instead of wedging the worker forever.
func TestFleetOpTimeoutFailsWedgedSwitch(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				ofwire.WriteMessage(conn, &ofwire.Message{Header: ofwire.Header{Type: ofwire.TypeHello}}) //nolint:errcheck
				for {
					req, err := ofwire.ReadMessage(conn)
					if err != nil {
						return
					}
					if req.Header.Type == ofwire.TypeEchoRequest {
						resp := &ofwire.Message{Header: ofwire.Header{Type: ofwire.TypeEchoReply,
							XID: req.Header.XID}, Raw: req.Raw}
						if err := ofwire.WriteMessage(conn, resp); err != nil {
							return
						}
					}
					// Swallow flow-mods: the wedge OpTimeout must break.
				}
			}(conn)
		}
	}()

	f, err := New(Config{OpTimeout: 100 * time.Millisecond, ProbeInterval: time.Hour},
		[]SwitchSpec{{ID: "wedged", Addr: lis.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	start := time.Now()
	res := f.Insert("wedged", testRule(1))
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("wedged insert err = %v, want deadline exceeded", res.Err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	if fault := f.Snapshot().Switches[0].LastFault; !strings.Contains(fault, "abandoned") {
		t.Errorf("last fault = %q, want the abandoned-request cause", fault)
	}
}
