package fleet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/ofwire"
	"hermes/internal/tcam"
	"hermes/internal/testutil"
)

// startAgents launches n in-process Hermes agent daemons on loopback. It
// also arms the goroutine-leak checker: fleet workers, client read loops
// and server handlers must all be joined by the time the test's cleanups
// have run.
func startAgents(t *testing.T, n int, cfg core.Config) ([]SwitchSpec, []*ofwire.AgentServer) {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	if cfg.Guarantee == 0 {
		cfg.Guarantee = 5 * time.Millisecond
	}
	specs := make([]SwitchSpec, n)
	servers := make([]*ofwire.AgentServer, n)
	for i := 0; i < n; i++ {
		srv, err := ofwire.NewAgentServer(fmt.Sprintf("sw-%d", i), tcam.Pica8P3290, cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv.Logf = t.Logf
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(lis) //nolint:errcheck
		t.Cleanup(func() { srv.Close() })
		specs[i] = SwitchSpec{ID: fmt.Sprintf("sw-%d", i), Addr: lis.Addr().String()}
		servers[i] = srv
	}
	return specs, servers
}

func testRule(id int) classifier.Rule {
	return classifier.Rule{
		ID:       classifier.RuleID(id),
		Match:    classifier.DstMatch(classifier.NewPrefix(uint32(id)<<12|0x0A000000, 28)),
		Priority: int32(id%10 + 1),
		Action:   classifier.Action{Type: classifier.ActionForward, Port: id % 48},
	}
}

// TestFleetDrivesAgentsConcurrently: 4 agents, 200 routed insertions in
// flight at once, merged metrics must balance (fleet total == Σ
// per-switch).
func TestFleetDrivesAgentsConcurrently(t *testing.T) {
	specs, _ := startAgents(t, 4, core.Config{DisableRateLimit: true})
	f, err := New(Config{BatchSize: 8}, specs)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const rules = 200
	chans := make([]<-chan OpResult, 0, rules)
	for i := 1; i <= rules; i++ {
		ch, err := f.InsertRoutedAsync(testRule(i))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		if res := <-ch; res.Err != nil {
			t.Fatalf("insert %d on %s: %v", i+1, res.Switch, res.Err)
		}
	}
	if err := f.Barrier(); err != nil {
		t.Fatal(err)
	}

	snap := f.Snapshot()
	if snap.Reachable != 4 || len(snap.Switches) != 4 {
		t.Fatalf("reachable = %d/%d", snap.Reachable, len(snap.Switches))
	}
	var sum uint64
	for _, sw := range snap.Switches {
		if sw.Stats == nil {
			t.Fatalf("switch %s unreachable in snapshot", sw.ID)
		}
		if sw.Stats.Inserts == 0 {
			t.Errorf("switch %s received no inserts; routing is not spreading", sw.ID)
		}
		if !sw.Healthy || sw.Breaker != BreakerClosed {
			t.Errorf("switch %s unhealthy: breaker=%v", sw.ID, sw.Breaker)
		}
		sum += sw.Stats.Inserts
	}
	if sum != rules {
		t.Errorf("Σ per-switch inserts = %d, want %d", sum, rules)
	}
	if snap.Total.Inserts != sum {
		t.Errorf("merged total %d != per-switch sum %d", snap.Total.Inserts, sum)
	}
	if got := snap.Guaranteed.N() + countUnguaranteed(snap); got != rules {
		t.Errorf("latency samples = %d, want %d", got, rules)
	}
	if snap.Table().String() == "" {
		t.Error("empty telemetry table")
	}

	// Routing is consistent: replaying the routing decision matches.
	for i := 1; i <= rules; i++ {
		if a, b := f.Route(classifier.RuleID(i)), f.Route(classifier.RuleID(i)); a != b {
			t.Fatalf("route %d unstable: %s vs %s", i, a, b)
		}
	}
}

func countUnguaranteed(s *Snapshot) int {
	n := 0
	for _, sw := range s.Switches {
		n += len(sw.AllMS) - len(sw.GuaranteedMS)
	}
	return n
}

// TestFleetCircuitBreaker: killing one agent server makes its worker fail
// fast while the other switches keep completing flow-mods; restarting the
// agent heals the circuit via the probe loop.
func TestFleetCircuitBreaker(t *testing.T) {
	specs, servers := startAgents(t, 3, core.Config{DisableRateLimit: true})
	f, err := New(Config{
		ProbeInterval: 20 * time.Millisecond,
		DialTimeout:   500 * time.Millisecond,
		Breaker:       BreakerConfig{FailureThreshold: 2, OpenTimeout: 100 * time.Millisecond},
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for i := 1; i <= 3; i++ {
		if res := f.Insert(specs[i-1].ID, testRule(i)); res.Err != nil {
			t.Fatalf("warmup insert on %s: %v", specs[i-1].ID, res.Err)
		}
	}

	// Kill switch 0.
	if err := servers[0].Close(); err != nil {
		t.Fatal(err)
	}

	// The health probes must trip the breaker.
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := f.Snapshot()
		if snap.Switches[0].Breaker == BreakerOpen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened; state=%v", snap.Switches[0].Breaker)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Operations on the dead switch fail fast with the typed error...
	start := time.Now()
	res := f.Insert(specs[0].ID, testRule(100))
	elapsed := time.Since(start)
	var open *CircuitOpenError
	if !errors.As(res.Err, &open) || open.Switch != specs[0].ID {
		t.Fatalf("dead-switch insert err = %v, want CircuitOpenError", res.Err)
	}
	if elapsed > time.Second {
		t.Errorf("fail-fast took %v", elapsed)
	}
	// ...while the other switches keep completing flow-mods.
	for i := 0; i < 20; i++ {
		id := 200 + i
		sw := specs[1+i%2].ID
		if res := f.Insert(sw, testRule(id)); res.Err != nil {
			t.Fatalf("healthy switch %s insert failed during outage: %v", sw, res.Err)
		}
	}
	snap := f.Snapshot()
	if snap.Reachable != 2 {
		t.Errorf("reachable = %d, want 2", snap.Reachable)
	}
	if snap.Switches[0].Trips == 0 {
		t.Error("no recorded breaker trips for the dead switch")
	}

	// Restart the agent on the same address; the probe loop must redial
	// and close the circuit.
	srv, err := ofwire.NewAgentServer("sw-0b", tcam.Pica8P3290,
		core.Config{Guarantee: 5 * time.Millisecond, DisableRateLimit: true})
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = t.Logf
	lis, err := net.Listen("tcp", specs[0].Addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", specs[0].Addr, err)
	}
	go srv.Serve(lis) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })

	deadline = time.Now().Add(10 * time.Second)
	for {
		res := f.Insert(specs[0].ID, testRule(300))
		if res.Err == nil {
			break
		}
		if !errors.As(res.Err, &open) {
			t.Fatalf("unexpected error during recovery: %v", res.Err)
		}
		if time.Now().After(deadline) {
			t.Fatal("circuit never closed after agent restart")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// divertingServer is a scripted wire agent: the first divertTimes insert
// attempts of every rule are pushed off the guaranteed path, as the Gate
// Keeper does when rate-limited or shadow-full.
type divertingServer struct {
	divertTimes int

	mu       sync.Mutex
	attempts map[uint64]int
	deletes  int
}

func (d *divertingServer) serve(t *testing.T, lis net.Listener) {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		go d.handle(t, conn)
	}
}

func (d *divertingServer) handle(t *testing.T, conn net.Conn) {
	defer conn.Close()
	if err := ofwire.WriteMessage(conn, &ofwire.Message{Header: ofwire.Header{Type: ofwire.TypeHello}}); err != nil {
		return
	}
	if _, err := ofwire.ReadMessage(conn); err != nil {
		return
	}
	for {
		req, err := ofwire.ReadMessage(conn)
		if err != nil {
			return
		}
		var resp *ofwire.Message
		switch req.Header.Type {
		case ofwire.TypeEchoRequest:
			resp = &ofwire.Message{Header: ofwire.Header{Type: ofwire.TypeEchoReply}, Raw: req.Raw}
		case ofwire.TypeBarrierRequest:
			resp = &ofwire.Message{Header: ofwire.Header{Type: ofwire.TypeBarrierReply}}
		case ofwire.TypeStatsRequest:
			d.mu.Lock()
			var total uint64
			for _, n := range d.attempts {
				total += uint64(n)
			}
			d.mu.Unlock()
			resp = &ofwire.Message{Header: ofwire.Header{Type: ofwire.TypeStatsReply},
				Stats: &ofwire.Stats{Inserts: total}}
		case ofwire.TypeFlowMod:
			fm := req.FlowMod
			rep := &ofwire.FlowModReply{RuleID: fm.RuleID, LatencyNS: uint64(50 * time.Microsecond)}
			if fm.Command == ofwire.FlowAdd {
				d.mu.Lock()
				d.attempts[fm.RuleID]++
				diverted := d.attempts[fm.RuleID] <= d.divertTimes
				d.mu.Unlock()
				if diverted {
					rep.Guaranteed, rep.Path = false, uint8(core.PathMain)
				} else {
					rep.Guaranteed, rep.Path = true, uint8(core.PathShadow)
				}
			} else if fm.Command == ofwire.FlowDelete {
				d.mu.Lock()
				d.deletes++
				d.mu.Unlock()
				rep.Guaranteed = true
			}
			resp = &ofwire.Message{Header: ofwire.Header{Type: ofwire.TypeFlowModReply}, FlowModReply: rep}
		default:
			continue
		}
		resp.Header.XID = req.Header.XID
		if err := ofwire.WriteMessage(conn, resp); err != nil {
			return
		}
	}
}

func startDiverting(t *testing.T, divertTimes int) (SwitchSpec, *divertingServer) {
	t.Helper()
	d := &divertingServer{divertTimes: divertTimes, attempts: make(map[uint64]int)}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go d.serve(t, lis)
	t.Cleanup(func() { lis.Close() })
	return SwitchSpec{ID: "divert-0", Addr: lis.Addr().String()}, d
}

// TestFleetRetriesDivertedInserts: a diverted insertion is deleted, backed
// off, and reissued until it lands on the guaranteed path.
func TestFleetRetriesDivertedInserts(t *testing.T) {
	spec, d := startDiverting(t, 2)
	f, err := New(Config{
		RetryDiverted: true,
		Retry:         RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
		Seed:          7,
	}, []SwitchSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const rules = 10
	for i := 1; i <= rules; i++ {
		res := f.Insert(spec.ID, testRule(i))
		if res.Err != nil {
			t.Fatalf("insert %d: %v", i, res.Err)
		}
		if !res.Result.Guaranteed {
			t.Fatalf("insert %d still diverted after retries: %+v", i, res.Result)
		}
		if res.Attempts != 3 { // 2 diverted attempts + 1 success
			t.Errorf("insert %d took %d attempts, want 3", i, res.Attempts)
		}
	}
	d.mu.Lock()
	deletes := d.deletes
	d.mu.Unlock()
	if deletes != 2*rules {
		t.Errorf("deletes = %d, want %d (one per diverted attempt)", deletes, 2*rules)
	}
	snap := f.Snapshot()
	sw := snap.Switches[0]
	if sw.Retries != 2*rules || sw.Diverted != 2*rules {
		t.Errorf("telemetry retries=%d diverted=%d, want %d", sw.Retries, sw.Diverted, 2*rules)
	}
}

// TestFleetRetryBudgetExhausted: a permanently diverting switch consumes
// the attempt budget and surfaces the final (unguaranteed) result.
func TestFleetRetryBudgetExhausted(t *testing.T) {
	spec, _ := startDiverting(t, 1000)
	f, err := New(Config{
		RetryDiverted: true,
		Retry:         RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		Seed:          7,
	}, []SwitchSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	res := f.Insert(spec.ID, testRule(1))
	if res.Err != nil {
		t.Fatalf("insert: %v", res.Err)
	}
	if res.Result.Guaranteed {
		t.Fatal("impossible guarantee")
	}
	if res.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", res.Attempts)
	}
}

// TestFleetCloseFailsQueuedOps: closing the fleet unblocks queued and
// in-flight operations with typed errors instead of hanging.
func TestFleetCloseFailsQueuedOps(t *testing.T) {
	// A peer that never answers flow-mods wedges the worker's batch.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				ofwire.WriteMessage(conn, &ofwire.Message{Header: ofwire.Header{Type: ofwire.TypeHello}}) //nolint:errcheck
				for {
					req, err := ofwire.ReadMessage(conn)
					if err != nil {
						return
					}
					if req.Header.Type == ofwire.TypeEchoRequest {
						resp := &ofwire.Message{Header: ofwire.Header{Type: ofwire.TypeEchoReply,
							XID: req.Header.XID}, Raw: req.Raw}
						if err := ofwire.WriteMessage(conn, resp); err != nil {
							return
						}
					}
					// Swallow everything else.
				}
			}(conn)
		}
	}()

	f, err := New(Config{QueueDepth: 16, BatchSize: 1, ProbeInterval: time.Hour},
		[]SwitchSpec{{ID: "wedged", Addr: lis.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}

	const ops = 6
	chans := make([]<-chan OpResult, ops)
	for i := 0; i < ops; i++ {
		ch, err := f.InsertAsync("wedged", testRule(i+1))
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	time.Sleep(50 * time.Millisecond) // let the first op wedge in flight

	done := make(chan struct{})
	go func() {
		f.Close() //nolint:errcheck
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a wedged switch")
	}
	for i, ch := range chans {
		select {
		case res := <-ch:
			if res.Err == nil {
				t.Errorf("op %d succeeded on a wedged switch", i)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("op %d never completed after Close", i)
		}
	}
	// Post-close submissions fail immediately.
	if _, err := f.InsertAsync("wedged", testRule(99)); !errors.Is(err, ErrFleetClosed) {
		t.Errorf("post-close submit err = %v", err)
	}
	if err := f.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// TestFleetValidation covers constructor and routing edge cases.
func TestFleetValidation(t *testing.T) {
	if _, err := New(Config{}, nil); !errors.Is(err, ErrNoSwitches) {
		t.Errorf("empty fleet err = %v", err)
	}
	if _, err := New(Config{DialTimeout: 100 * time.Millisecond},
		[]SwitchSpec{{ID: "x", Addr: "127.0.0.1:1"}}); err == nil {
		t.Error("dial to dead port succeeded")
	}
	specs, _ := startAgents(t, 2, core.Config{DisableRateLimit: true})
	dup := []SwitchSpec{specs[0], {ID: specs[0].ID, Addr: specs[1].Addr}}
	if _, err := New(Config{}, dup); err == nil {
		t.Error("duplicate switch id accepted")
	}
	f, err := New(Config{}, specs)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if res := f.Insert("no-such-switch", testRule(1)); !errors.Is(res.Err, ErrUnknownSwitch) {
		t.Errorf("unknown switch err = %v", res.Err)
	}
	if got := f.Size(); got != 2 {
		t.Errorf("size = %d", got)
	}
	if got := f.Switches(); len(got) != 2 || got[0] != "sw-0" || got[1] != "sw-1" {
		t.Errorf("switches = %v", got)
	}
	// Delete/Modify round-trip through the fleet API.
	if res := f.Insert("sw-0", testRule(5)); res.Err != nil {
		t.Fatal(res.Err)
	}
	mod := testRule(5)
	mod.Action = classifier.Action{Type: classifier.ActionDrop}
	if res := f.Modify("sw-0", mod); res.Err != nil {
		t.Fatalf("modify: %v", res.Err)
	}
	if res := f.Delete("sw-0", 5); res.Err != nil {
		t.Fatalf("delete: %v", res.Err)
	}
}

// resultLedger is an OnResult hook that tallies completions by outcome,
// the way a load generator's ledger does.
type resultLedger struct {
	mu          sync.Mutex
	total       int
	ok          int
	rejected    int // remote typed errors
	circuitOpen int
	closed      int
	other       int
}

func (l *resultLedger) observe(res OpResult) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	var remote *ofwire.ErrorBody
	var open *CircuitOpenError
	switch {
	case res.Err == nil:
		l.ok++
	case errors.As(res.Err, &remote):
		l.rejected++
	case errors.As(res.Err, &open):
		l.circuitOpen++
	case errors.Is(res.Err, ErrFleetClosed):
		l.closed++
	default:
		l.other++
	}
}

func (l *resultLedger) counts() (total, ok, rejected, circuitOpen, closed, other int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total, l.ok, l.rejected, l.circuitOpen, l.closed, l.other
}

// TestFleetOnResultObservesEveryOp: the completion hook must fire exactly
// once per submitted op on every path — successes, remote rejections,
// circuit-open fast failures — and always before the result reaches the
// submitter's channel.
func TestFleetOnResultObservesEveryOp(t *testing.T) {
	specs, servers := startAgents(t, 2, core.Config{DisableRateLimit: true})
	ledger := &resultLedger{}
	f, err := New(Config{
		OnResult:      ledger.observe,
		ProbeInterval: 20 * time.Millisecond,
		DialTimeout:   500 * time.Millisecond,
		Breaker:       BreakerConfig{FailureThreshold: 2, OpenTimeout: 10 * time.Second},
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const n = 40
	for i := 1; i <= n; i++ {
		if res := f.Insert(specs[i%2].ID, testRule(i)); res.Err != nil {
			t.Fatalf("insert %d: %v", i, res.Err)
		}
	}
	// Duplicate inserts: remote rejections, observed as such.
	for i := 1; i <= 5; i++ {
		if res := f.Insert(specs[i%2].ID, testRule(i)); res.Err == nil {
			t.Fatalf("duplicate insert %d unexpectedly succeeded", i)
		}
	}
	total, ok, rejected, _, _, other := ledger.counts()
	if total != n+5 || ok != n || rejected != 5 || other != 0 {
		t.Fatalf("ledger total/ok/rejected/other = %d/%d/%d/%d, want %d/%d/5/0",
			total, ok, rejected, other, n+5, n)
	}

	// Kill switch 0 and wait for the breaker to trip: the circuit-open fast
	// path bypasses the worker queue and must still report to the hook.
	if err := servers[0].Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if f.Snapshot().Switches[0].Breaker == BreakerOpen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened")
		}
		time.Sleep(10 * time.Millisecond)
	}
	var open *CircuitOpenError
	if res := f.Insert(specs[0].ID, testRule(500)); !errors.As(res.Err, &open) {
		t.Fatalf("dead-switch insert err = %v, want CircuitOpenError", res.Err)
	}
	if _, _, _, circuitOpen, _, _ := ledger.counts(); circuitOpen != 1 {
		t.Fatalf("circuit-open completions = %d, want 1", circuitOpen)
	}
}

// TestFleetOnResultObservesShutdownDrain: ops still queued when Close cuts
// the fleet down are failed with ErrFleetClosed, and the hook must see each
// of those exactly once too — a loadgen ledger may not leak in-flight ops.
func TestFleetOnResultObservesShutdownDrain(t *testing.T) {
	// A peer that answers echoes but swallows flow-mods wedges the worker.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				ofwire.WriteMessage(conn, &ofwire.Message{Header: ofwire.Header{Type: ofwire.TypeHello}}) //nolint:errcheck
				for {
					req, err := ofwire.ReadMessage(conn)
					if err != nil {
						return
					}
					if req.Header.Type == ofwire.TypeEchoRequest {
						resp := &ofwire.Message{Header: ofwire.Header{Type: ofwire.TypeEchoReply,
							XID: req.Header.XID}, Raw: req.Raw}
						if err := ofwire.WriteMessage(conn, resp); err != nil {
							return
						}
					}
				}
			}(conn)
		}
	}()

	ledger := &resultLedger{}
	f, err := New(Config{OnResult: ledger.observe, QueueDepth: 16, BatchSize: 1,
		ProbeInterval: time.Hour},
		[]SwitchSpec{{ID: "wedged", Addr: lis.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}

	const ops = 6
	chans := make([]<-chan OpResult, ops)
	for i := 0; i < ops; i++ {
		ch, err := f.InsertAsync("wedged", testRule(i+1))
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	time.Sleep(50 * time.Millisecond) // let the first op wedge in flight
	f.Close()                         //nolint:errcheck
	for i, ch := range chans {
		select {
		case res := <-ch:
			if res.Err == nil {
				t.Errorf("op %d succeeded on a wedged switch", i)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("op %d never completed after Close", i)
		}
	}
	total, ok, rejected, circuitOpen, closed, other := ledger.counts()
	if total != ops || ok != 0 {
		t.Fatalf("ledger total/ok = %d/%d, want %d/0", total, ok, ops)
	}
	// How each op fails depends on timing: in-flight ops die with wire
	// errors, queued ops drain with ErrFleetClosed — unless the op
	// timeout fires first and the accumulated failures open the breaker,
	// in which case the remainder complete with CircuitOpenError. The
	// contract is conservation, not the split: every op is observed
	// exactly once, never as a success, and never as a remote rejection
	// (the switch swallowed the flow-mods, it did not answer them).
	if rejected != 0 {
		t.Fatalf("rejected = %d on a switch that never replied", rejected)
	}
	if circuitOpen+closed+other != ops {
		t.Fatalf("circuitOpen+closed+other = %d+%d+%d, want %d in total",
			circuitOpen, closed, other, ops)
	}
}
