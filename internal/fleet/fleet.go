// Package fleet is the controller-side fleet control plane: it drives many
// Hermes agents concurrently over the ofwire protocol — the layer between
// the single-agent core and a production deployment of one agent per
// switch (Fig. 2 of the paper, scaled out).
//
// A Fleet owns one worker per switch. Each worker has a bounded flow-mod
// queue, dispatches batches over a pipelined client (many requests in
// flight per connection), retries insertions the Gate Keeper diverts off
// the guaranteed path with exponential backoff plus deterministic jitter,
// and trips a circuit breaker — fed by echo health probes — when its
// switch dies, so one wedged agent degrades to fail-fast instead of
// stalling the rest of the fleet. Rules route to switches either
// explicitly or consistently by rule ID, and a fleet-wide Snapshot merges
// every agent's counters with client-observed latency percentiles.
//
// Workers are crash-aware: when a switch's control channel dies, the
// health-probe loop redials it (through the optional Dial seam, which
// chaos tests use to inject wire faults) and replays the worker's
// applied-rule set onto the restarted agent before the circuit closes, so
// a power-cycled switch converges back to the controller's desired state
// without operator involvement.
package fleet

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/obs"
	"hermes/internal/ofwire"
)

// Fleet errors.
var (
	// ErrFleetClosed is returned for operations on a closed fleet.
	ErrFleetClosed = errors.New("fleet: closed")
	// ErrUnknownSwitch is returned for operations naming a switch the
	// fleet does not manage.
	ErrUnknownSwitch = errors.New("fleet: unknown switch")
	// ErrNoSwitches is returned by New for an empty fleet.
	ErrNoSwitches = errors.New("fleet: no switches")
)

// SwitchSpec names one switch and its agent's control-channel address.
type SwitchSpec struct {
	ID   string
	Addr string
}

// Config tunes the fleet. The zero value is completed with defaults.
type Config struct {
	// QueueDepth bounds each worker's flow-mod queue; a full queue
	// applies backpressure to submitters. Defaults to 128.
	QueueDepth int
	// BatchSize caps how many queued flow-mods one worker dispatches
	// concurrently over its pipelined connection. Defaults to 16.
	BatchSize int
	// DialTimeout bounds the initial and reconnect dials. Defaults to 2s.
	DialTimeout time.Duration
	// Dial, when non-nil, replaces the plain TCP dial for initial and
	// reconnect connections. The fleet performs the ofwire hello exchange
	// on whatever connection it returns. This is the wire-fault seam:
	// chaos tests hand in faultinject.(*Wire).Dial to perturb the control
	// channel without the fleet knowing.
	Dial func(network, addr string) (net.Conn, error)
	// WireBatch switches workers to vectored dispatch: instead of issuing
	// each queued flow-mod as its own request, a worker drains its queue
	// into one flow-mod-batch frame (up to BatchSize ops, lingering at
	// most BatchLinger for stragglers) and applies it with a single wire
	// round trip — amortizing syscalls, the agent's lock acquisition, and
	// its snapshot rebuild across the whole batch. Ops are encoded in
	// queue order and the agent applies them in order, so per-rule FIFO
	// (an insert followed by a delete of the same rule never reorders) is
	// preserved end to end. RetryDiverted is intentionally bypassed in
	// batch mode: a divert retry deletes and re-inserts one rule
	// mid-stream, which would break exactly the ordering the batch path
	// guarantees.
	WireBatch bool
	// BatchLinger is how long a worker holding a non-full batch waits for
	// more queued ops before flushing (size-or-deadline coalescing). Only
	// consulted when WireBatch is set. Defaults to 500µs.
	BatchLinger time.Duration
	// OpTimeout, when > 0, bounds every request the fleet issues on a
	// control channel (flow-mods, barriers, probes, stats). A stalled
	// switch then fails the request with context.DeadlineExceeded instead
	// of wedging the worker forever.
	OpTimeout time.Duration
	// ProbeInterval is the echo health-probe period. Defaults to 100ms.
	ProbeInterval time.Duration
	// Retry shapes the backoff for diverted insertions (RetryDiverted).
	Retry RetryPolicy
	// Breaker tunes the per-switch circuit breaker.
	Breaker BreakerConfig
	// RetryDiverted enables delete-and-reinsert retries for guaranteed
	// insertions the Gate Keeper diverted to the unguaranteed main path
	// (rate-limited or shadow-full).
	RetryDiverted bool
	// Seed makes backoff jitter deterministic; runs with the same seed
	// and workload replay identical retry schedules. Defaults to 1.
	Seed int64
	// Obs, when non-nil, exposes per-switch fleet metrics on the registry:
	// queue depth, breaker state and trips, op/retry/divert/reconnect
	// counters, and the control channel's in-flight gauge and RTT
	// histogram, all labeled with the switch ID. Nil disables exposition
	// with zero hot-path cost.
	Obs *obs.Registry
	// OnResult, when non-nil, observes every finished operation — the
	// completion-notification seam load generators use to feed a ledger
	// without wrapping each result channel. It fires exactly once per
	// submitted op (successes, remote rejections, circuit-open fast
	// failures, and shutdown drains alike), before the result is delivered
	// to the submitter's channel. It runs on worker goroutines: keep it
	// fast and never block.
	OnResult func(OpResult)
	// OnReconnect, when non-nil, fires after a worker redials a dead
	// switch, replays its desired rules, and swaps the fresh connection in
	// — the reconnect-trigger seam a reconciler uses to re-examine a
	// switch that may have restarted with empty tables. It runs on the
	// worker's probe goroutine: keep it fast and never block.
	OnReconnect func(switchID string)
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.BatchLinger <= 0 {
		c.BatchLinger = 500 * time.Microsecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 100 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.Retry = c.Retry.withDefaults()
	c.Breaker = c.Breaker.withDefaults()
	return c
}

// Fleet drives N Hermes agents concurrently.
type Fleet struct {
	cfg     Config
	workers map[string]*worker
	order   []string // sorted switch IDs; the consistent routing table

	mu     sync.Mutex
	closed bool
}

// New dials every switch and starts one worker per switch. On any dial
// failure the already-connected switches are closed and the error is
// returned.
func New(cfg Config, switches []SwitchSpec) (*Fleet, error) {
	if len(switches) == 0 {
		return nil, ErrNoSwitches
	}
	f := &Fleet{cfg: cfg.withDefaults(), workers: make(map[string]*worker, len(switches))}
	for _, spec := range switches {
		if spec.ID == "" {
			spec.ID = spec.Addr
		}
		if _, dup := f.workers[spec.ID]; dup {
			f.teardown()
			return nil, fmt.Errorf("fleet: duplicate switch id %q", spec.ID)
		}
		client, err := f.dialClient(spec.Addr)
		if err != nil {
			f.teardown()
			return nil, fmt.Errorf("fleet: dialing %s (%s): %w", spec.ID, spec.Addr, err)
		}
		f.workers[spec.ID] = newWorker(f, spec, client)
		f.order = append(f.order, spec.ID)
	}
	sort.Strings(f.order)
	for _, w := range f.workers {
		w.start()
	}
	return f, nil
}

// dialClient opens one control channel to addr — through the Dial seam
// when configured, a plain bounded TCP dial otherwise — and applies the
// fleet's per-request deadline to the fresh client.
func (f *Fleet) dialClient(addr string) (*ofwire.Client, error) {
	var client *ofwire.Client
	if f.cfg.Dial != nil {
		conn, err := f.cfg.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		client, err = ofwire.NewClient(conn)
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		client, err = ofwire.Dial(addr, f.cfg.DialTimeout)
		if err != nil {
			return nil, err
		}
	}
	client.SetRequestTimeout(f.cfg.OpTimeout)
	return client, nil
}

func (f *Fleet) teardown() {
	for _, w := range f.workers {
		w.close() //nolint:errcheck
	}
}

// Switches returns the managed switch IDs in routing order.
func (f *Fleet) Switches() []string {
	return append([]string(nil), f.order...)
}

// Size returns the number of managed switches.
func (f *Fleet) Size() int { return len(f.order) }

// Route maps a rule ID to its home switch: consistent hashing over the
// sorted switch set, so the same rule always lands on the same switch for
// a given fleet membership.
func (f *Fleet) Route(id classifier.RuleID) string {
	h := fnv64a(fmt.Sprintf("rule-%d", uint64(id)))
	return f.order[h%uint64(len(f.order))]
}

// submit queues one op on the switch's worker. A switch with an open
// circuit fails fast without queuing.
func (f *Fleet) submit(switchID string, o *op) (<-chan OpResult, error) {
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return nil, ErrFleetClosed
	}
	w, ok := f.workers[switchID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSwitch, switchID)
	}
	o.done = make(chan OpResult, 1)
	if !w.brk.allow() {
		w.tele.fail()
		w.complete(o, OpResult{Switch: w.id, RuleID: o.rule.ID, Err: &CircuitOpenError{Switch: w.id}})
		return o.done, nil
	}
	if err := w.enqueue(o); err != nil {
		return nil, err
	}
	return o.done, nil
}

// InsertAsync queues an insertion on the named switch and returns the
// result channel immediately; the queue applies backpressure when full.
func (f *Fleet) InsertAsync(switchID string, r classifier.Rule) (<-chan OpResult, error) {
	return f.submit(switchID, &op{kind: opInsert, rule: r})
}

// DeleteAsync queues a deletion on the named switch.
func (f *Fleet) DeleteAsync(switchID string, id classifier.RuleID) (<-chan OpResult, error) {
	return f.submit(switchID, &op{kind: opDelete, rule: classifier.Rule{ID: id}})
}

// ModifyAsync queues a modification on the named switch.
func (f *Fleet) ModifyAsync(switchID string, r classifier.Rule) (<-chan OpResult, error) {
	return f.submit(switchID, &op{kind: opModify, rule: r})
}

func await(ch <-chan OpResult, err error) OpResult {
	if err != nil {
		return OpResult{Err: err}
	}
	return <-ch
}

// Insert queues an insertion and waits for its outcome.
func (f *Fleet) Insert(switchID string, r classifier.Rule) OpResult {
	res := await(f.InsertAsync(switchID, r))
	if res.Switch == "" {
		res.Switch, res.RuleID = switchID, r.ID
	}
	return res
}

// Delete queues a deletion and waits for its outcome.
func (f *Fleet) Delete(switchID string, id classifier.RuleID) OpResult {
	res := await(f.DeleteAsync(switchID, id))
	if res.Switch == "" {
		res.Switch, res.RuleID = switchID, id
	}
	return res
}

// Modify queues a modification and waits for its outcome.
func (f *Fleet) Modify(switchID string, r classifier.Rule) OpResult {
	res := await(f.ModifyAsync(switchID, r))
	if res.Switch == "" {
		res.Switch, res.RuleID = switchID, r.ID
	}
	return res
}

// InsertRouted inserts on the rule's home switch (consistent routing).
func (f *Fleet) InsertRouted(r classifier.Rule) OpResult {
	return f.Insert(f.Route(r.ID), r)
}

// InsertRoutedAsync queues an insertion on the rule's home switch.
func (f *Fleet) InsertRoutedAsync(r classifier.Rule) (<-chan OpResult, error) {
	return f.InsertAsync(f.Route(r.ID), r)
}

// ObservedRules dumps the named switch's controller-visible rule set over
// its control channel — the observed side of a desired-vs-observed diff,
// sorted by rule ID. A switch with an open circuit fails fast with
// CircuitOpenError so callers back off instead of piling requests onto a
// dead channel.
func (f *Fleet) ObservedRules(switchID string) ([]classifier.Rule, error) {
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return nil, ErrFleetClosed
	}
	w, ok := f.workers[switchID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSwitch, switchID)
	}
	if !w.brk.allow() {
		w.tele.fail()
		return nil, &CircuitOpenError{Switch: switchID}
	}
	rules, err := w.currentClient().DumpRules()
	if err != nil {
		var remote *ofwire.ErrorBody
		if !errors.As(err, &remote) {
			w.tele.fault(err)
			w.brk.failure(time.Now())
		}
		return nil, err
	}
	w.brk.success()
	return rules, nil
}

// BreakerState reports the named switch's circuit state, letting callers
// (reconcilers, dashboards) distinguish a switch that is dead from one
// that is merely slow without submitting a probe op.
func (f *Fleet) BreakerState(switchID string) (BreakerState, error) {
	w, ok := f.workers[switchID]
	if !ok {
		return BreakerClosed, fmt.Errorf("%w: %q", ErrUnknownSwitch, switchID)
	}
	st, _ := w.brk.snapshot()
	return st, nil
}

// Barrier fences every healthy switch: it returns once each has applied
// all flow-mods issued before the call. Switches with open circuits are
// skipped; connection errors are joined into the returned error.
func (f *Fleet) Barrier() error {
	var (
		wg   sync.WaitGroup
		emu  sync.Mutex
		errs []error
	)
	for _, id := range f.order {
		w := f.workers[id]
		if !w.brk.allow() {
			continue
		}
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			if err := w.currentClient().Barrier(); err != nil {
				emu.Lock()
				errs = append(errs, fmt.Errorf("fleet: barrier %s: %w", w.id, err))
				emu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Snapshot fetches every reachable agent's counters concurrently and
// merges them with the controller-side telemetry into one fleet-wide view.
func (f *Fleet) Snapshot() *Snapshot {
	snap := &Snapshot{Switches: make([]SwitchSnapshot, len(f.order))}
	var wg sync.WaitGroup
	for i, id := range f.order {
		w := f.workers[id]
		s := &snap.Switches[i]
		wg.Add(1)
		go func(w *worker, s *SwitchSnapshot) {
			defer wg.Done()
			s.ID = w.id
			s.Breaker, s.Trips = w.brk.snapshot()
			w.tele.snapshot(s)
			if w.brk.allow() {
				if st, err := w.currentClient().Stats(); err == nil {
					s.Stats = st
				}
			}
			s.Healthy = s.Breaker == BreakerClosed && s.Stats != nil
		}(w, s)
	}
	wg.Wait()
	snap.finalize()
	return snap
}

// Close shuts every worker down: queued ops fail with ErrFleetClosed,
// in-flight requests are cut, goroutines joined. Safe to call repeatedly.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	var errs []error
	for _, id := range f.order {
		if err := f.workers[id].close(); err != nil &&
			!errors.Is(err, ofwire.ErrClientClosed) && !isClosedConn(err) {
			errs = append(errs, fmt.Errorf("fleet: closing %s: %w", id, err))
		}
	}
	return errors.Join(errs...)
}

// isClosedConn reports the benign "use of closed network connection" error
// double-closes produce.
func isClosedConn(err error) bool {
	return errors.Is(err, net.ErrClosed)
}
