package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/faultinject"
	"hermes/internal/intent"
	"hermes/internal/ofwire"
)

// TestFleetWireBatchEndToEnd: batch mode drives real agents through the
// vectored wire path. Every submitted op completes exactly once with its
// own result, and the merged stats balance just like in per-op mode.
func TestFleetWireBatchEndToEnd(t *testing.T) {
	specs, _ := startAgents(t, 3, core.Config{DisableRateLimit: true})
	ledger := &resultLedger{}
	f, err := New(Config{
		WireBatch:   true,
		BatchSize:   16,
		BatchLinger: 200 * time.Microsecond,
		OnResult:    ledger.observe,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const rules = 300
	chans := make([]<-chan OpResult, 0, rules)
	for i := 1; i <= rules; i++ {
		ch, err := f.InsertRoutedAsync(testRule(i))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("insert %d on %s: %v", i+1, res.Switch, res.Err)
		}
		if res.Result.Latency == 0 {
			t.Fatalf("insert %d: empty result demuxed: %+v", i+1, res.Result)
		}
	}
	if err := f.Barrier(); err != nil {
		t.Fatal(err)
	}
	snap := f.Snapshot()
	var sum uint64
	for _, sw := range snap.Switches {
		if sw.Stats == nil {
			t.Fatalf("switch %s unreachable", sw.ID)
		}
		sum += sw.Stats.Inserts
	}
	if sum != rules {
		t.Fatalf("Σ per-switch inserts = %d, want %d", sum, rules)
	}
	if total, ok, _, _, _, other := ledger.counts(); total != rules || ok != rules || other != 0 {
		t.Fatalf("ledger total/ok/other = %d/%d/%d, want %d/%d/0", total, ok, other, rules, rules)
	}

	// Delete everything back through the same batched path.
	dchans := make([]<-chan OpResult, 0, rules)
	for i := 1; i <= rules; i++ {
		sw := f.Route(classifier.RuleID(i))
		ch, err := f.DeleteAsync(sw, classifier.RuleID(i))
		if err != nil {
			t.Fatal(err)
		}
		dchans = append(dchans, ch)
	}
	for i, ch := range dchans {
		if res := <-ch; res.Err != nil {
			t.Fatalf("delete %d: %v", i+1, res.Err)
		}
	}
}

// TestFleetWireBatchPreservesPerRuleFIFO is the ordering contract: for any
// one rule, insert→delete (and insert→modify→delete) submitted in order on
// one switch must never reorder, whether the coalescer packs them into the
// same frame or splits them across frames. A reorder is observable as a
// duplicate-rule or unknown-rule rejection, so all-success proves FIFO.
func TestFleetWireBatchPreservesPerRuleFIFO(t *testing.T) {
	cases := []struct {
		name   string
		size   int
		linger time.Duration
	}{
		{"size1", 1, 100 * time.Microsecond},        // every op its own frame
		{"size4-short-linger", 4, time.Microsecond}, // frames split mid-cycle
		{"size64-long-linger", 64, time.Millisecond},
		{"default", 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			specs, _ := startAgents(t, 1, core.Config{DisableRateLimit: true})
			f, err := New(Config{
				WireBatch:   true,
				BatchSize:   tc.size,
				BatchLinger: tc.linger,
			}, specs)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()

			const cycles = 40
			const lanes = 8 // distinct rule IDs churned concurrently
			var chans []<-chan OpResult
			var kinds []string
			submit := func(kind string, ch <-chan OpResult, err error) {
				if err != nil {
					t.Fatal(err)
				}
				chans = append(chans, ch)
				kinds = append(kinds, kind)
			}
			for c := 0; c < cycles; c++ {
				for l := 1; l <= lanes; l++ {
					r := testRule(l)
					ch, err := f.InsertAsync(specs[0].ID, r)
					submit(fmt.Sprintf("cycle %d lane %d insert", c, l), ch, err)
					mod := r
					mod.Action = classifier.Action{Type: classifier.ActionDrop}
					ch, err = f.ModifyAsync(specs[0].ID, mod)
					submit(fmt.Sprintf("cycle %d lane %d modify", c, l), ch, err)
					ch, err = f.DeleteAsync(specs[0].ID, r.ID)
					submit(fmt.Sprintf("cycle %d lane %d delete", c, l), ch, err)
				}
			}
			for i, ch := range chans {
				if res := <-ch; res.Err != nil {
					t.Fatalf("%s reordered or failed: %v", kinds[i], res.Err)
				}
			}
			// The table must be empty again: every insert's delete landed after it.
			st := f.Snapshot().Switches[0].Stats
			if st == nil {
				t.Fatal("switch unreachable in snapshot")
			}
			if occ := st.MainOcc + st.ShadowOcc; occ != 0 {
				t.Fatalf("occupancy = %d after balanced churn, want 0", occ)
			}
		})
	}
}

// TestFleetWireBatchRemoteErrorsDemuxed: per-op rejections inside a batch
// reach exactly the op that caused them as typed remote errors, the
// neighbours in the same frame succeed, and the breaker stays closed — a
// rejected flow-mod means the switch is alive, not faulty.
func TestFleetWireBatchRemoteErrorsDemuxed(t *testing.T) {
	specs, _ := startAgents(t, 1, core.Config{DisableRateLimit: true})
	ledger := &resultLedger{}
	f, err := New(Config{
		WireBatch:   true,
		BatchSize:   32,
		BatchLinger: time.Millisecond,
		OnResult:    ledger.observe,
		Breaker:     BreakerConfig{FailureThreshold: 2, OpenTimeout: 10 * time.Second},
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Interleave good inserts with duplicates and unknown deletes so bad ops
	// land mid-frame with successes on both sides.
	if res := f.Insert(specs[0].ID, testRule(1)); res.Err != nil {
		t.Fatal(res.Err)
	}
	var chans []<-chan OpResult
	wantErr := make([]ofwire.ErrorCode, 0, 16)
	for i := 2; i <= 9; i++ {
		ch, err := f.InsertAsync(specs[0].ID, testRule(i))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
		wantErr = append(wantErr, 0)
		if i%3 == 0 {
			dup, err := f.InsertAsync(specs[0].ID, testRule(1)) // duplicate of warm-up rule
			if err != nil {
				t.Fatal(err)
			}
			chans = append(chans, dup)
			wantErr = append(wantErr, ofwire.ErrCodeDuplicateRule)
		}
		if i%4 == 0 {
			del, err := f.DeleteAsync(specs[0].ID, classifier.RuleID(9000+i))
			if err != nil {
				t.Fatal(err)
			}
			chans = append(chans, del)
			wantErr = append(wantErr, ofwire.ErrCodeUnknownRule)
		}
	}
	for i, ch := range chans {
		res := <-ch
		if wantErr[i] == 0 {
			if res.Err != nil {
				t.Fatalf("op %d: unexpected error %v", i, res.Err)
			}
			continue
		}
		var remote *ofwire.ErrorBody
		if !errors.As(res.Err, &remote) || remote.Code != wantErr[i] {
			t.Fatalf("op %d: err = %v, want remote code %v", i, res.Err, wantErr[i])
		}
	}
	snap := f.Snapshot()
	if snap.Switches[0].Breaker != BreakerClosed {
		t.Fatalf("breaker = %v after per-op rejections, want closed", snap.Switches[0].Breaker)
	}
	if snap.Switches[0].Trips != 0 {
		t.Fatalf("breaker tripped %d times on app-level rejections", snap.Switches[0].Trips)
	}
}

// TestFleetWireBatchCircuitOpen: with the breaker open, batched ops fail
// fast with the typed error and every op in the gathered batch is completed.
func TestFleetWireBatchCircuitOpen(t *testing.T) {
	specs, servers := startAgents(t, 1, core.Config{DisableRateLimit: true})
	ledger := &resultLedger{}
	f, err := New(Config{
		WireBatch:     true,
		BatchSize:     8,
		BatchLinger:   200 * time.Microsecond,
		OnResult:      ledger.observe,
		ProbeInterval: 20 * time.Millisecond,
		DialTimeout:   500 * time.Millisecond,
		Breaker:       BreakerConfig{FailureThreshold: 2, OpenTimeout: 10 * time.Second},
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if res := f.Insert(specs[0].ID, testRule(1)); res.Err != nil {
		t.Fatal(res.Err)
	}
	if err := servers[0].Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for f.Snapshot().Switches[0].Breaker != BreakerOpen {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened")
		}
		time.Sleep(10 * time.Millisecond)
	}

	const ops = 12
	chans := make([]<-chan OpResult, ops)
	for i := 0; i < ops; i++ {
		ch, err := f.InsertAsync(specs[0].ID, testRule(100+i))
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	var open *CircuitOpenError
	for i, ch := range chans {
		select {
		case res := <-ch:
			if !errors.As(res.Err, &open) || open.Switch != specs[0].ID {
				t.Fatalf("op %d err = %v, want CircuitOpenError", i, res.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("op %d never completed with the circuit open", i)
		}
	}
}

// TestChaosBatchedWireConvergence is the chaos-style convergence gate for
// the batched wire path: 40 seeded fault schedules (connection resets and
// mid-batch partial writes, injected at the dial seam) are replayed against
// a fleet coalescing ops into vectored frames. Ops fail, connections die
// mid-frame, batches land ambiguously — and once the faults lift, a
// level-triggered diff-and-apply loop must drive the switch to exactly the
// desired rule set. A torn batch (a prefix of a frame applied), a lost
// completion, or a reordered insert→delete would all surface as a diff that
// never reaches zero.
func TestChaosBatchedWireConvergence(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for s := 0; s < seeds; s++ {
		seed := int64(97 + 31*s)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runBatchChaosSeed(t, seed)
		})
	}
}

func runBatchChaosSeed(t *testing.T, seed int64) {
	specs, _ := startAgents(t, 1, core.Config{DisableRateLimit: true})
	sw := specs[0].ID
	wire := faultinject.NewWire(faultinject.WireConfig{
		Seed:            seed,
		ResetProb:       0.04,
		PartialProb:     0.04,
		PartialMidFrame: true,
	})
	var faulty atomic.Bool
	faulty.Store(true)
	cfg := Config{
		WireBatch:   true,
		BatchSize:   8,
		BatchLinger: 200 * time.Microsecond,
		Dial: func(network, addr string) (net.Conn, error) {
			if faulty.Load() {
				return wire.Dial(network, addr)
			}
			return net.DialTimeout(network, addr, time.Second)
		},
		OpTimeout:     2 * time.Second,
		ProbeInterval: 10 * time.Millisecond,
		DialTimeout:   500 * time.Millisecond,
		Breaker:       BreakerConfig{FailureThreshold: 2, OpenTimeout: 20 * time.Millisecond},
	}
	// The constructor's handshake runs through the faulty dial too; a seed
	// whose schedule kills it gets bounded retries (each consumes further
	// decisions from the same deterministic stream).
	var f *Fleet
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		if f, err = New(cfg, specs); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("fleet never constructed under seed %d: %v", seed, err)
	}
	defer f.Close()

	// Churn under fire: inserts with interleaved deletes, batched on the
	// wire, with the fault plan cutting connections out from under them.
	// Per-op outcomes are unknowable (a batch may apply and lose its
	// reply); the desired map is the ground truth the switch must reach.
	rng := rand.New(rand.NewSource(seed))
	desired := make(map[classifier.RuleID]classifier.Rule)
	var chans []<-chan OpResult
	for i := 1; i <= 24; i++ {
		r := testRule(i)
		desired[r.ID] = r
		if ch, err := f.InsertAsync(sw, r); err == nil {
			chans = append(chans, ch)
		}
		if rng.Intn(3) == 0 {
			id := classifier.RuleID(1 + rng.Intn(i))
			delete(desired, id)
			if ch, err := f.DeleteAsync(sw, id); err == nil {
				chans = append(chans, ch)
			}
		}
	}
	for _, ch := range chans { // every op completes exactly once, pass or fail
		select {
		case <-ch:
		case <-time.After(10 * time.Second):
			t.Fatal("op never completed under faults")
		}
	}

	// Lift the faults and cut the (possibly wrapped) connection so the
	// probe loop redials cleanly.
	faulty.Store(false)
	f.workers[sw].currentClient().Close() //nolint:errcheck

	// Level-triggered convergence: observe, diff against desired, apply,
	// repeat. Transient errors (breaker reopening, dead client) just mean
	// another round.
	want := make([]classifier.Rule, 0, len(desired))
	for _, r := range desired {
		want = append(want, r)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		observed, err := f.ObservedRules(sw)
		if err == nil {
			ops := intent.Diff(want, observed)
			if len(ops) == 0 {
				return // converged: observed == desired, exactly
			}
			for _, op := range ops {
				switch op.Kind {
				case intent.OpInsert:
					f.Insert(sw, op.Rule)
				case intent.OpModify:
					f.Modify(sw, op.Rule)
				case intent.OpDelete:
					f.Delete(sw, op.Rule.ID)
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("seed %d never converged: observe err=%v", seed, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
