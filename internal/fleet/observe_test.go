package fleet

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/ofwire"
	"hermes/internal/tcam"
)

// restartAgent brings a fresh, empty agent up on a dead agent's address,
// skipping the test when the OS has not released the port yet.
func restartAgent(t *testing.T, addr string) {
	t.Helper()
	srv, err := ofwire.NewAgentServer("restarted", tcam.Pica8P3290,
		core.Config{Guarantee: 5 * time.Millisecond, DisableRateLimit: true})
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = t.Logf
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	go srv.Serve(lis) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
}

// TestFleetObservedRules: ObservedRules dumps the switch's live rule set —
// the observed side of a desired-vs-observed diff — sorted by ID and
// reflecting deletes; unknown switches fail with ErrUnknownSwitch.
func TestFleetObservedRules(t *testing.T) {
	specs, _ := startAgents(t, 2, core.Config{DisableRateLimit: true})
	f, err := New(Config{}, specs)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	want := map[string][]classifier.Rule{}
	for i := 1; i <= 30; i++ {
		r := testRule(i)
		sw := f.Route(r.ID)
		if res := f.Insert(sw, r); res.Err != nil {
			t.Fatalf("insert %d: %v", i, res.Err)
		}
		want[sw] = append(want[sw], r)
	}
	for _, sw := range f.Switches() {
		got, err := f.ObservedRules(sw)
		if err != nil {
			t.Fatalf("ObservedRules(%s): %v", sw, err)
		}
		if len(got) != len(want[sw]) {
			t.Fatalf("%s observed %d rules, want %d", sw, len(got), len(want[sw]))
		}
		byID := map[classifier.RuleID]classifier.Rule{}
		for i, r := range got {
			if i > 0 && got[i-1].ID >= r.ID {
				t.Fatalf("%s dump not sorted: %d then %d", sw, got[i-1].ID, r.ID)
			}
			byID[r.ID] = r
		}
		for _, r := range want[sw] {
			if byID[r.ID] != r {
				t.Fatalf("%s rule %d: observed %+v, want %+v", sw, r.ID, byID[r.ID], r)
			}
		}
	}

	// A delete shows up in the next dump.
	victim := want[specs[0].ID][0]
	if res := f.Delete(specs[0].ID, victim.ID); res.Err != nil {
		t.Fatal(res.Err)
	}
	got, err := f.ObservedRules(specs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.ID == victim.ID {
			t.Fatalf("deleted rule %d still observed", r.ID)
		}
	}

	if _, err := f.ObservedRules("no-such-switch"); !errors.Is(err, ErrUnknownSwitch) {
		t.Fatalf("unknown switch err = %v, want ErrUnknownSwitch", err)
	}
	if st, err := f.BreakerState(specs[0].ID); err != nil || st != BreakerClosed {
		t.Fatalf("BreakerState = %v, %v; want closed, nil", st, err)
	}
	if _, err := f.BreakerState("no-such-switch"); !errors.Is(err, ErrUnknownSwitch) {
		t.Fatalf("BreakerState unknown switch err = %v, want ErrUnknownSwitch", err)
	}
}

// TestFleetClosedErrorsAreTyped: after Close, every entry point fails with
// an error that errors.Is-matches ErrFleetClosed — the permanent-failure
// signal a retry layer uses to stop requeueing — and that is distinct from
// the transient CircuitOpenError.
func TestFleetClosedErrorsAreTyped(t *testing.T) {
	specs, _ := startAgents(t, 1, core.Config{DisableRateLimit: true})
	f, err := New(Config{}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := f.InsertAsync(specs[0].ID, testRule(1)); !errors.Is(err, ErrFleetClosed) {
		t.Fatalf("InsertAsync after Close: %v, want ErrFleetClosed", err)
	}
	if _, err := f.DeleteAsync(specs[0].ID, 1); !errors.Is(err, ErrFleetClosed) {
		t.Fatalf("DeleteAsync after Close: %v, want ErrFleetClosed", err)
	}
	if _, err := f.ModifyAsync(specs[0].ID, testRule(1)); !errors.Is(err, ErrFleetClosed) {
		t.Fatalf("ModifyAsync after Close: %v, want ErrFleetClosed", err)
	}
	if res := f.Insert(specs[0].ID, testRule(1)); !errors.Is(res.Err, ErrFleetClosed) {
		t.Fatalf("Insert after Close: %v, want ErrFleetClosed", res.Err)
	}
	if _, err := f.ObservedRules(specs[0].ID); !errors.Is(err, ErrFleetClosed) {
		t.Fatalf("ObservedRules after Close: %v, want ErrFleetClosed", err)
	}

	// The permanent signal must not be mistaken for the transient one: a
	// reconciler requeues on CircuitOpenError and stops on ErrFleetClosed.
	res := f.Insert(specs[0].ID, testRule(1))
	var open *CircuitOpenError
	if errors.As(res.Err, &open) {
		t.Fatalf("closed-fleet error %v matches CircuitOpenError", res.Err)
	}
}

// TestFleetOnReconnect: killing an agent and restarting it on the same
// address fires the OnReconnect hook with the switch ID once the probe
// loop has redialed and resynced — the reconnect trigger a reconciler
// subscribes to.
func TestFleetOnReconnect(t *testing.T) {
	specs, servers := startAgents(t, 1, core.Config{DisableRateLimit: true})
	var (
		mu    sync.Mutex
		fired []string
	)
	f, err := New(Config{
		ProbeInterval: 20 * time.Millisecond,
		DialTimeout:   500 * time.Millisecond,
		Breaker:       BreakerConfig{FailureThreshold: 2, OpenTimeout: 50 * time.Millisecond},
		OnReconnect: func(sw string) {
			mu.Lock()
			fired = append(fired, sw)
			mu.Unlock()
		},
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	if res := f.Insert(specs[0].ID, testRule(1)); res.Err != nil {
		t.Fatal(res.Err)
	}
	if err := servers[0].Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for f.Snapshot().Switches[0].Breaker != BreakerOpen {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened after switch death")
		}
		time.Sleep(10 * time.Millisecond)
	}
	restartAgent(t, specs[0].Addr)

	deadline = time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(fired)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("OnReconnect never fired after restart")
		}
		time.Sleep(20 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, sw := range fired {
		if sw != specs[0].ID {
			t.Fatalf("OnReconnect fired for %q, want %q", sw, specs[0].ID)
		}
	}
}
