package fleet

import (
	"fmt"
	"sort"
	"sync"

	"hermes/internal/ofwire"
	"hermes/internal/stats"
)

// switchTelemetry is the controller-side view of one switch: operation
// outcomes and client-observed latencies. Agent-side counters ride in the
// wire Stats fetched at snapshot time.
type switchTelemetry struct {
	mu           sync.Mutex
	opsOK        uint64
	opsFailed    uint64
	retries      uint64
	diverted     uint64
	reconnects   uint64
	resyncs      uint64
	lastFault    string
	guaranteedMS []float64
	allMS        []float64
}

func (t *switchTelemetry) observe(res ofwire.FlowModResult) {
	ms := res.Latency.Seconds() * 1e3
	t.mu.Lock()
	t.opsOK++
	t.allMS = append(t.allMS, ms)
	if res.Guaranteed {
		t.guaranteedMS = append(t.guaranteedMS, ms)
	}
	t.mu.Unlock()
}

func (t *switchTelemetry) fail() {
	t.mu.Lock()
	t.opsFailed++
	t.mu.Unlock()
}

func (t *switchTelemetry) retry() {
	t.mu.Lock()
	t.retries++
	t.mu.Unlock()
}

func (t *switchTelemetry) divert() {
	t.mu.Lock()
	t.diverted++
	t.mu.Unlock()
}

// reconnect records one successful redial-plus-resync of the switch.
func (t *switchTelemetry) reconnect() {
	t.mu.Lock()
	t.reconnects++
	t.mu.Unlock()
}

// resynced records n rules replayed onto a restarted agent.
func (t *switchTelemetry) resynced(n int) {
	t.mu.Lock()
	t.resyncs += uint64(n)
	t.mu.Unlock()
}

// counters copies the monotonic controller-side counters; the scrape-time
// closures in registerObs read through here so exposition never races the
// dispatch path.
func (t *switchTelemetry) counters() (okOps, failed, retries, diverted, reconnects, resyncs uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.opsOK, t.opsFailed, t.retries, t.diverted, t.reconnects, t.resyncs
}

// fault records the cause of the most recent connection-level failure.
func (t *switchTelemetry) fault(err error) {
	t.mu.Lock()
	t.lastFault = err.Error()
	t.mu.Unlock()
}

// SwitchSnapshot is one switch's slice of a fleet snapshot.
type SwitchSnapshot struct {
	ID      string
	Healthy bool         // circuit closed and stats reachable
	Breaker BreakerState // circuit state at snapshot time
	Trips   uint64       // times the circuit has opened

	// Controller-side accounting.
	OpsOK, OpsFailed, Retries, Diverted uint64

	// Reconnects counts successful redials of a dead control channel;
	// Resyncs counts the rules replayed onto restarted agents across them.
	Reconnects, Resyncs uint64
	// LastFault is the cause of the most recent connection-level failure
	// (dial, echo probe, resync, or flow-mod wire error); empty while the
	// switch has never faulted.
	LastFault string

	// Stats are the agent's own counters fetched over the wire; nil when
	// the switch was unreachable.
	Stats *ofwire.Stats

	// GuaranteedMS / AllMS are client-observed flow-mod latencies (ms).
	GuaranteedMS []float64
	AllMS        []float64
}

// Snapshot is the merged, fleet-wide telemetry view: per-switch breakdown
// plus totals and latency percentiles across every switch.
type Snapshot struct {
	Switches []SwitchSnapshot

	// Total merges the agent counters of every reachable switch.
	Total ofwire.Stats
	// Reachable counts switches whose stats were fetched.
	Reachable int

	// Guaranteed and All summarize client-observed latencies fleet-wide.
	Guaranteed *stats.Summary
	All        *stats.Summary
}

// snapshot copies the telemetry under the lock.
func (t *switchTelemetry) snapshot(s *SwitchSnapshot) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s.OpsOK, s.OpsFailed, s.Retries, s.Diverted = t.opsOK, t.opsFailed, t.retries, t.diverted
	s.Reconnects, s.Resyncs, s.LastFault = t.reconnects, t.resyncs, t.lastFault
	s.GuaranteedMS = append([]float64(nil), t.guaranteedMS...)
	s.AllMS = append([]float64(nil), t.allMS...)
}

// mergeStats accumulates one switch's agent counters into the total.
func mergeStats(total *ofwire.Stats, s *ofwire.Stats) {
	total.Inserts += s.Inserts
	total.ShadowInserts += s.ShadowInserts
	total.MainInserts += s.MainInserts
	total.Bypasses += s.Bypasses
	total.Violations += s.Violations
	total.Migrations += s.Migrations
	total.ShadowOcc += s.ShadowOcc
	total.MainOcc += s.MainOcc
	total.ShadowSize += s.ShadowSize
}

// finalize sorts the per-switch views and builds the fleet-wide summaries.
func (s *Snapshot) finalize() {
	sort.Slice(s.Switches, func(i, j int) bool { return s.Switches[i].ID < s.Switches[j].ID })
	var guaranteed, all []float64
	for i := range s.Switches {
		sw := &s.Switches[i]
		guaranteed = append(guaranteed, sw.GuaranteedMS...)
		all = append(all, sw.AllMS...)
		if sw.Stats != nil {
			mergeStats(&s.Total, sw.Stats)
			s.Reachable++
		}
	}
	s.Guaranteed = stats.Summarize(guaranteed)
	s.All = stats.Summarize(all)
}

// Table renders the snapshot as a per-switch table with a totals row,
// matching the repo's plain-text harness style.
func (s *Snapshot) Table() *stats.Table {
	tab := &stats.Table{
		Title: "fleet telemetry",
		Headers: []string{"switch", "circuit", "ok", "failed", "retries", "reconn",
			"inserts", "shadow", "main", "violations", "p50ms", "p99ms"},
	}
	row := func(id, circuit string, okOps, failed, retries, reconn uint64, st *ofwire.Stats, sum *stats.Summary) {
		ins, shadow, main, viol := "-", "-", "-", "-"
		if st != nil {
			ins = fmt.Sprintf("%d", st.Inserts)
			shadow = fmt.Sprintf("%d", st.ShadowInserts)
			main = fmt.Sprintf("%d", st.MainInserts)
			viol = fmt.Sprintf("%d", st.Violations)
		}
		tab.AddRow(id, circuit,
			fmt.Sprintf("%d", okOps), fmt.Sprintf("%d", failed), fmt.Sprintf("%d", retries),
			fmt.Sprintf("%d", reconn),
			ins, shadow, main, viol,
			fmt.Sprintf("%.3f", sum.Median()), fmt.Sprintf("%.3f", sum.P99()))
	}
	var okOps, failed, retries, reconn uint64
	for i := range s.Switches {
		sw := &s.Switches[i]
		row(sw.ID, sw.Breaker.String(), sw.OpsOK, sw.OpsFailed, sw.Retries, sw.Reconnects,
			sw.Stats, stats.Summarize(sw.GuaranteedMS))
		okOps += sw.OpsOK
		failed += sw.OpsFailed
		retries += sw.Retries
		reconn += sw.Reconnects
	}
	row("TOTAL", fmt.Sprintf("%d/%d up", s.Reachable, len(s.Switches)),
		okOps, failed, retries, reconn, &s.Total, s.Guaranteed)
	return tab
}
