package fleet

import "hermes/internal/obs"

// registerObs exposes one worker on the fleet's obs registry. Counters and
// the breaker state are scrape-time closures over state the worker already
// maintains (telemetry, breaker, queue), so the dispatch hot path gains no
// new synchronization; only the wire client gets live instruments (in-flight
// gauge, RTT histogram), which it records locklessly.
//
// Labels carry the switch ID, so a fleet-wide /metrics page breaks every
// series down per switch the way the paper's Fig. 2 deployment would need.
func registerObs(reg *obs.Registry, w *worker) {
	if reg == nil {
		return
	}
	lbl := obs.Labels("switch", w.id)

	w.inflight = reg.GaugeL("hermes_ofwire_inflight", lbl,
		"control-channel requests awaiting replies")
	w.rtt = reg.HistogramL("hermes_ofwire_rtt_ns", lbl, "ns",
		"client-observed control-channel round-trip time")

	reg.GaugeFunc("hermes_fleet_queue_depth", lbl,
		"flow-mods waiting in the worker's bounded queue",
		func() float64 { return float64(len(w.queue)) })
	reg.GaugeFunc("hermes_fleet_breaker_state", lbl,
		"circuit state: 0 closed, 1 open, 2 half-open",
		func() float64 { st, _ := w.brk.snapshot(); return float64(st) })
	reg.CounterFunc("hermes_fleet_breaker_trips_total", lbl,
		"times the switch's circuit opened",
		func() uint64 { _, trips := w.brk.snapshot(); return trips })

	reg.CounterFunc("hermes_fleet_ops_ok_total", lbl,
		"flow-mods acknowledged by the switch",
		func() uint64 { ok, _, _, _, _, _ := w.tele.counters(); return ok })
	reg.CounterFunc("hermes_fleet_ops_failed_total", lbl,
		"flow-mods failed (wire fault or open circuit)",
		func() uint64 { _, failed, _, _, _, _ := w.tele.counters(); return failed })
	reg.CounterFunc("hermes_fleet_retries_total", lbl,
		"delete-and-reinsert retries of diverted insertions",
		func() uint64 { _, _, retries, _, _, _ := w.tele.counters(); return retries })
	reg.CounterFunc("hermes_fleet_diverted_total", lbl,
		"guaranteed insertions the Gate Keeper diverted to the main path",
		func() uint64 { _, _, _, diverted, _, _ := w.tele.counters(); return diverted })
	reg.CounterFunc("hermes_fleet_reconnects_total", lbl,
		"successful redials of a dead control channel",
		func() uint64 { _, _, _, _, reconnects, _ := w.tele.counters(); return reconnects })
	reg.CounterFunc("hermes_fleet_resyncs_total", lbl,
		"rules replayed onto restarted agents",
		func() uint64 { _, _, _, _, _, resyncs := w.tele.counters(); return resyncs })
}
