package lint

import (
	"go/ast"
	"strings"
)

// LintDirectiveAnalyzer polices the escape hatch: every //lint:ignore
// must name an analyzer this suite actually runs (a typo silently
// suppresses nothing and rots) and must carry reason text (an
// unexplained suppression is indistinguishable from a silenced bug — the
// reason is the reviewable artifact). Bare ignores still suppress, so a
// stale tree keeps linting the same, but they are themselves findings
// until justified.
//
// Findings of this analyzer are exempt from suppression (see
// Package.suppressed): a directive cannot vouch for itself.
var LintDirectiveAnalyzer = &Analyzer{
	Name: "lintdirective",
	Doc:  "flags //lint:ignore directives with unknown analyzers or missing reason text",
	Run:  runLintDirective,
}

func runLintDirective(p *Pass) {
	for _, file := range p.Files() {
		for _, group := range file.Comments {
			for _, c := range group.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				checkDirective(p, c, strings.Fields(strings.TrimPrefix(text, ignorePrefix)))
			}
		}
	}
}

func checkDirective(p *Pass, c *ast.Comment, fields []string) {
	if len(fields) == 0 {
		p.Reportf(c.Pos(), "//lint:ignore names no analyzer; write //lint:ignore <analyzer> <reason>")
		return
	}
	for _, name := range strings.Split(fields[0], ",") {
		if !p.Prog.KnownAnalyzer(name) {
			p.Reportf(c.Pos(), "//lint:ignore names unknown analyzer %q; this directive suppresses nothing", name)
		}
	}
	if len(fields) < 2 {
		p.Reportf(c.Pos(), "bare //lint:ignore %s without reason text; justify the suppression", fields[0])
	}
}
