package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses `src` (a complete func f declaration) and returns the
// body of f. CFG construction and the dataflow solver are pure AST
// transforms, so no type information is needed.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file, err := parser.ParseFile(token.NewFileSet(), "cfg_test_input.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parsing %q: %v", src, err)
	}
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == "f" {
			return fn.Body
		}
	}
	t.Fatalf("no func f in %q", src)
	return nil
}

func blocksOfKind(cfg *CFG, kind string) []*Block {
	var out []*Block
	for _, b := range cfg.Blocks {
		if b.Kind == kind {
			out = append(out, b)
		}
	}
	return out
}

func oneBlock(t *testing.T, cfg *CFG, kind string) *Block {
	t.Helper()
	bs := blocksOfKind(cfg, kind)
	if len(bs) != 1 {
		t.Fatalf("want exactly one %q block, got %d", kind, len(bs))
	}
	return bs[0]
}

func hasEdge(from, to *Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

func TestCFGStructure(t *testing.T) {
	cases := []struct {
		name string
		src  string
		chk  func(t *testing.T, cfg *CFG)
	}{
		{
			name: "straight line falls off the end",
			src:  `func f() { x := 1; _ = x }`,
			chk: func(t *testing.T, cfg *CFG) {
				if len(cfg.Entry.Nodes) != 2 {
					t.Errorf("entry nodes = %d, want 2", len(cfg.Entry.Nodes))
				}
				if cfg.Entry.Term != nil {
					t.Error("straight-line entry must not have a terminator")
				}
				if !hasEdge(cfg.Entry, cfg.Exit) {
					t.Error("missing entry→exit fall-off edge")
				}
			},
		},
		{
			name: "if with else: both arms join, no cond→join edge",
			src:  `func f(c bool) { if c { a() } else { b() }; d() }`,
			chk: func(t *testing.T, cfg *CFG) {
				then, els, join := oneBlock(t, cfg, "if.then"), oneBlock(t, cfg, "if.else"), oneBlock(t, cfg, "if.join")
				if !hasEdge(cfg.Entry, then) || !hasEdge(cfg.Entry, els) {
					t.Error("cond block must branch to both arms")
				}
				if hasEdge(cfg.Entry, join) {
					t.Error("with an else, control cannot skip both arms")
				}
				if !hasEdge(then, join) || !hasEdge(els, join) {
					t.Error("both arms must reach the join")
				}
			},
		},
		{
			name: "if without else: cond edge to join",
			src:  `func f(c bool) { if c { a() }; d() }`,
			chk: func(t *testing.T, cfg *CFG) {
				join := oneBlock(t, cfg, "if.join")
				if !hasEdge(cfg.Entry, join) {
					t.Error("missing cond→join edge for the false branch")
				}
			},
		},
		{
			name: "both arms return: join unreachable, exit preds are returns",
			src:  `func f(c bool) { if c { return }; return }`,
			chk: func(t *testing.T, cfg *CFG) {
				join := oneBlock(t, cfg, "if.join")
				// The false branch reaches the join (it holds the second
				// return); the then arm must not.
				then := oneBlock(t, cfg, "if.then")
				if hasEdge(then, join) {
					t.Error("returning arm must not fall into the join")
				}
				for _, p := range cfg.Exit.Preds {
					if p.Term == nil {
						t.Errorf("exit pred %q has no terminator; want explicit returns only", p.Kind)
					}
				}
			},
		},
		{
			name: "for loop: cond branches, post closes the back edge",
			src:  `func f(n int) { for i := 0; i < n; i++ { a() }; d() }`,
			chk: func(t *testing.T, cfg *CFG) {
				head := oneBlock(t, cfg, "for.head")
				body := oneBlock(t, cfg, "for.body")
				post := oneBlock(t, cfg, "for.post")
				exit := oneBlock(t, cfg, "for.exit")
				if !hasEdge(head, body) || !hasEdge(head, exit) {
					t.Error("loop head must branch to body and exit")
				}
				if !hasEdge(body, post) || !hasEdge(post, head) {
					t.Error("body→post→head back edge missing")
				}
			},
		},
		{
			name: "range loop: head holds the range expr, body loops to head",
			src:  `func f(xs []int) { for _, x := range xs { use(x) } }`,
			chk: func(t *testing.T, cfg *CFG) {
				head := oneBlock(t, cfg, "range.head")
				body := oneBlock(t, cfg, "range.body")
				exit := oneBlock(t, cfg, "range.exit")
				if len(head.Nodes) != 1 {
					t.Errorf("range head nodes = %d, want 1 (the range expression)", len(head.Nodes))
				}
				if !hasEdge(head, body) || !hasEdge(head, exit) || !hasEdge(body, head) {
					t.Error("range head/body/exit wiring wrong")
				}
			},
		},
		{
			name: "labeled break leaves the outer loop",
			src: `func f() {
outer:
	for {
		for {
			break outer
		}
	}
	done()
}`,
			chk: func(t *testing.T, cfg *CFG) {
				exits := blocksOfKind(cfg, "for.exit")
				if len(exits) != 2 {
					t.Fatalf("want 2 for.exit blocks, got %d", len(exits))
				}
				outerExit := exits[0] // created before the inner loop's
				var brk *Block
				for _, b := range cfg.Blocks {
					if bs, ok := b.Term.(*ast.BranchStmt); ok && bs.Label != nil {
						brk = b
					}
				}
				if brk == nil {
					t.Fatal("no block terminated by the labeled break")
				}
				if !hasEdge(brk, outerExit) {
					t.Error("break outer must edge to the outer loop exit")
				}
				if !outerExit.Reachable() {
					t.Error("outer exit must be reachable via the labeled break")
				}
			},
		},
		{
			name: "goto edges back to its label block",
			src: `func f() {
	i := 0
loop:
	i++
	if i < 3 {
		goto loop
	}
}`,
			chk: func(t *testing.T, cfg *CFG) {
				label := oneBlock(t, cfg, "label.loop")
				var gt *Block
				for _, b := range cfg.Blocks {
					if bs, ok := b.Term.(*ast.BranchStmt); ok && bs.Tok == token.GOTO {
						gt = b
					}
				}
				if gt == nil {
					t.Fatal("no block terminated by goto")
				}
				if !hasEdge(gt, label) {
					t.Error("goto must edge to the label block")
				}
			},
		},
		{
			name: "switch: fallthrough chains clauses, no default edges to join",
			src: `func f(x int) {
	switch x {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	}
	c()
}`,
			chk: func(t *testing.T, cfg *CFG) {
				cases := blocksOfKind(cfg, "switch.case")
				if len(cases) != 2 {
					t.Fatalf("want 2 case blocks, got %d", len(cases))
				}
				join := oneBlock(t, cfg, "switch.join")
				if !hasEdge(cases[0], cases[1]) {
					t.Error("fallthrough must chain case 1 into case 2")
				}
				if hasEdge(cases[0], join) {
					t.Error("falling-through clause must not also edge to the join")
				}
				if !hasEdge(cfg.Entry, join) {
					t.Error("switch without default needs a dispatch→join edge")
				}
			},
		},
		{
			name: "select: one block per comm, default kept non-blocking",
			src: `func f(ch chan int) {
	select {
	case v := <-ch:
		use(v)
	default:
	}
	d()
}`,
			chk: func(t *testing.T, cfg *CFG) {
				comms := blocksOfKind(cfg, "select.comm")
				if len(comms) != 2 {
					t.Fatalf("want 2 comm blocks, got %d", len(comms))
				}
				join := oneBlock(t, cfg, "select.join")
				for _, c := range comms {
					if !hasEdge(cfg.Entry, c) || !hasEdge(c, join) {
						t.Error("every clause must be dispatch-reachable and rejoin")
					}
				}
			},
		},
		{
			name: "empty select blocks forever: edge to exit, rest dead",
			src:  `func f() { select {}; d() }`,
			chk: func(t *testing.T, cfg *CFG) {
				if !hasEdge(cfg.Entry, cfg.Exit) {
					t.Error("select{} must edge to exit (the goroutine never continues)")
				}
				dead := blocksOfKind(cfg, "dead")
				if len(dead) != 1 || dead[0].Reachable() {
					t.Error("statement after select{} must be an unreachable dead block")
				}
			},
		},
		{
			name: "panic terminates the block with an exit edge",
			src:  `func f(c bool) { if c { panic("boom") }; d() }`,
			chk: func(t *testing.T, cfg *CFG) {
				then := oneBlock(t, cfg, "if.then")
				if then.Term == nil {
					t.Fatal("panic must terminate its block")
				}
				if !hasEdge(then, cfg.Exit) {
					t.Error("panic needs an edge to exit")
				}
				// The fall-off path (d() in the join) has no terminator, so
				// exit must see one pred with Term and one without — the
				// distinction lockcheck uses to exempt panic paths.
				var withTerm, withoutTerm int
				for _, p := range cfg.Exit.Preds {
					if p.Term != nil {
						withTerm++
					} else {
						withoutTerm++
					}
				}
				if withTerm != 1 || withoutTerm != 1 {
					t.Errorf("exit preds with/without terminator = %d/%d, want 1/1", withTerm, withoutTerm)
				}
			},
		},
		{
			name: "defer is a straight-line node, not a terminator",
			src:  `func f() { defer cleanup(); d() }`,
			chk: func(t *testing.T, cfg *CFG) {
				if len(cfg.Entry.Nodes) != 2 {
					t.Fatalf("entry nodes = %d, want 2", len(cfg.Entry.Nodes))
				}
				if _, ok := cfg.Entry.Nodes[0].(*ast.DeferStmt); !ok {
					t.Error("defer must appear as an ordinary node")
				}
				if cfg.Entry.Term != nil {
					t.Error("defer must not terminate the block")
				}
			},
		},
		{
			name: "code after return is dead",
			src:  `func f() { return; d() }`,
			chk: func(t *testing.T, cfg *CFG) {
				dead := blocksOfKind(cfg, "dead")
				if len(dead) != 1 {
					t.Fatalf("want 1 dead block, got %d", len(dead))
				}
				if dead[0].Reachable() {
					t.Error("dead block must not be reachable")
				}
				if !cfg.Entry.Reachable() {
					t.Error("entry must always count as reachable")
				}
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			c.chk(t, BuildCFG(parseBody(t, c.src)))
		})
	}
}

// defsTransfer is the toy analysis the framework tests run: `x := ...`
// generates the fact "x", `x = ...` kills it. Enough to distinguish may
// from must merges and to watch loop facts converge.
var defsTransfer = GenKillTransfer(func(n ast.Node) (gen, kill []string) {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return nil, nil
	}
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		if as.Tok == token.DEFINE {
			gen = append(gen, id.Name)
		} else {
			kill = append(kill, id.Name)
		}
	}
	return gen, kill
})

func TestForwardBranchMeet(t *testing.T) {
	body := parseBody(t, `func f(c bool) {
	if c {
		a := 1
		use(a)
	} else {
		b := 2
		use(b)
	}
	end()
}`)
	cfg := BuildCFG(body)
	join := oneBlock(t, cfg, "if.join")

	union := Forward(cfg, MeetUnion, NewSet[string](), defsTransfer)
	if in := union.In[join]; !in.Has("a") || !in.Has("b") {
		t.Errorf("union at join = %v, want both a and b (may-analysis)", in)
	}
	must := Forward(cfg, MeetIntersect, NewSet[string](), defsTransfer)
	if in := must.In[join]; in.Has("a") || in.Has("b") {
		t.Errorf("intersect at join = %v, want neither (each defined on one arm only)", in)
	}
}

func TestForwardLoopFixpoint(t *testing.T) {
	body := parseBody(t, `func f(n int) {
	for i := 0; i < n; i++ {
		x := 1
		use(x)
	}
	end()
}`)
	cfg := BuildCFG(body)
	head := oneBlock(t, cfg, "for.head")
	exit := oneBlock(t, cfg, "for.exit")

	union := Forward(cfg, MeetUnion, NewSet[string](), defsTransfer)
	if in := union.In[head]; !in.Has("i") || !in.Has("x") {
		t.Errorf("union at loop head = %v, want i and x (back edge carries the body fact)", in)
	}
	if in := union.In[exit]; !in.Has("x") {
		t.Errorf("union at loop exit = %v, want x", in)
	}

	must := Forward(cfg, MeetIntersect, NewSet[string](), defsTransfer)
	if in := must.In[head]; !in.Has("i") || in.Has("x") {
		t.Errorf("intersect at loop head = %v, want i only (zero-iteration path has no x)", in)
	}

	// The back edge forces at least one revisit of the head before the
	// union fixed point; the intersect solve stabilizes on first contact.
	if union.Iterations <= must.Iterations {
		t.Errorf("union iterations %d <= intersect iterations %d; back edge was not re-solved",
			union.Iterations, must.Iterations)
	}
}

func TestForwardBoundaryAndUnreachable(t *testing.T) {
	body := parseBody(t, `func f() { return; d() }`)
	cfg := BuildCFG(body)
	res := Forward(cfg, MeetUnion, NewSet("seed"), defsTransfer)
	if in := res.In[cfg.Entry]; !in.Has("seed") {
		t.Errorf("entry in-set %v must contain the boundary fact", in)
	}
	dead := oneBlock(t, cfg, "dead")
	if res.In[dead] != nil {
		t.Errorf("unreachable block must keep the nil (top) in-set, got %v", res.In[dead])
	}
}

func TestStateAtReplay(t *testing.T) {
	body := parseBody(t, `func f() {
	a := 1
	b := 2
	use(a, b)
}`)
	cfg := BuildCFG(body)
	res := Forward(cfg, MeetUnion, NewSet[string](), defsTransfer)
	target := cfg.Entry.Nodes[1] // the `b := 2` statement
	state := res.StateAt(defsTransfer, cfg.Entry, target)
	if !state.Has("a") || state.Has("b") {
		t.Errorf("state before second assign = %v, want {a}", state)
	}
}

func TestGenKillOrder(t *testing.T) {
	// A node that both kills and gens the same fact must end with it
	// present: kills apply first.
	transfer := GenKillTransfer(func(n ast.Node) (gen, kill []string) {
		return []string{"x"}, []string{"x"}
	})
	out := transfer(&ast.EmptyStmt{}, NewSet("x"))
	if !out.Has("x") {
		t.Error("gen must apply after kill")
	}
}
