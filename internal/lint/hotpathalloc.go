package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathAllocAnalyzer is the interprocedural upgrade of allocscan. The
// intraprocedural pass catches a make() written directly inside
// Table.Lookup; it is blind to the same allocation pushed one call down
// into a helper. This pass propagates the zero-alloc budget through the
// module call graph: from each hot root (per-packet lookup functions, the
// obs record path, and the agent's snapshot read path in internal/core),
// every resolved call site whose callee transitively allocates is
// reported at the call site with the chain that carries the allocation
// in. Direct allocations inside a root are reported too, at the same
// position allocscan uses, and the shared "alloc" dedup group collapses
// the overlap where both analyzers cover a package.
//
// Like the call graph itself this under-approximates dynamic dispatch:
// allocations behind interface calls or function values are not chased.
// The hot paths are deliberately monomorphic, so in practice the static
// closure is the real closure.
var HotPathAllocAnalyzer = &Analyzer{
	Name:       "hotpathalloc",
	Doc:        "flags calls from zero-alloc hot-path roots to helpers that transitively allocate",
	DedupGroup: "alloc",
	Paths: []string{
		"internal/tcam",
		"internal/classifier",
		"internal/obs",
		"internal/core",
		"internal/rulecache",
	},
	SkipTests: true,
	Run:       runHotPathAlloc,
}

// coreBatchFuncs are the agent's vectored entry points and their in-loop
// helpers (DESIGN.md §15). Exact names, because the batch insert path
// promises 0 allocs/op at steady state (BenchmarkAgentInsertBatch) while
// sibling mutators in the same package allocate freely. Only meaningful
// inside internal/core.
var coreBatchFuncs = map[string]bool{
	"InsertBatch":       true,
	"DeleteBatch":       true,
	"ApplyBatch":        true,
	"insertBatched":     true,
	"resetBatchResults": true,
	"appendBatchResult": true,
	"takeRuleState":     true,
}

// hotAllocRoot reports whether a function starts a zero-alloc budget:
// lookup-path functions in tcam/classifier/core plus the core batch entry
// points, record-path functions in obs. Roots found via the call graph
// share the name rules allocscan applies file by file.
func hotAllocRoot(fn *FuncNode) bool {
	path := strings.TrimSuffix(fn.Pkg.Path, "_test")
	if path == "internal/obs" || strings.HasSuffix(path, "/internal/obs") {
		return obsRecordFuncs[fn.Name]
	}
	if path == "internal/core" || strings.HasSuffix(path, "/internal/core") {
		return hotPathFunc(fn.Name) || coreBatchFuncs[fn.Name]
	}
	if isRulecachePath(path) {
		return hotPathFunc(fn.Name) || cacheSampleFuncs[fn.Name]
	}
	for _, suffix := range []string{"internal/tcam", "internal/classifier"} {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return hotPathFunc(fn.Name)
		}
	}
	return false
}

// allocReach computes, once per Run, which module functions transitively
// perform a heap allocation (make, append, or a map/slice composite
// literal anywhere in the body, including nested literals).
func allocReach(prog *Program) map[string]*ReachInfo {
	return prog.Cached("hotpathalloc.reach", func() any {
		g := prog.CallGraph()
		return g.Reaches(directAlloc)
	}).(map[string]*ReachInfo)
}

// directAlloc finds the first heap allocation lexically inside a function
// body.
func directAlloc(fn *FuncNode) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if p, ok := allocSite(fn.Pkg, n); ok {
			pos, found = p, true
			return false
		}
		return true
	})
	return pos, found
}

// allocSite decodes one allocating node: a make/append builtin call or a
// map/slice composite literal. The same set allocscan flags.
func allocSite(pkg *Package, n ast.Node) (token.Pos, bool) {
	switch n := n.(type) {
	case *ast.CallExpr:
		id, ok := n.Fun.(*ast.Ident)
		if !ok {
			return token.NoPos, false
		}
		if _, builtin := pkg.Info.Uses[id].(*types.Builtin); !builtin {
			return token.NoPos, false
		}
		if id.Name == "make" || id.Name == "append" {
			return n.Pos(), true
		}
	case *ast.CompositeLit:
		tv, ok := pkg.Info.Types[n]
		if !ok || tv.Type == nil {
			return token.NoPos, false
		}
		switch tv.Type.Underlying().(type) {
		case *types.Map, *types.Slice:
			return n.Pos(), true
		}
	}
	return token.NoPos, false
}

func runHotPathAlloc(p *Pass) {
	reach := allocReach(p.Prog)
	g := p.Prog.CallGraph()
	for _, id := range g.order {
		node := g.Funcs[id]
		if node.Pkg != p.Pkg || !p.DeclInScope(node.Decl) || !hotAllocRoot(node) {
			continue
		}
		// Direct allocations in the root body itself. Same positions
		// allocscan reports where it also runs; dedup keeps one.
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if pos, ok := allocSite(p.Pkg, n); ok {
				p.Reportf(pos, "%s is a zero-alloc hot-path root but allocates here; hoist the allocation into setup state",
					node.Name)
			}
			return true
		})
		// Call sites whose callee transitively allocates. Callees that are
		// themselves roots get their own analysis, so the budget handoff is
		// theirs to justify, not this call site's.
		for _, cs := range node.Calls {
			if cs.Callee == "" || cs.Callee == id {
				continue
			}
			info := reach[cs.Callee]
			if info == nil {
				continue
			}
			if callee := g.Node(cs.Callee); callee != nil && hotAllocRoot(callee) {
				continue
			}
			chain := append([]string{shortFuncID(cs.Callee)}, g.Chain(reach, cs.Callee)...)
			p.Reportf(cs.Call.Pos(),
				"%s is zero-alloc but this call allocates via %s; hoist the allocation or restructure the helper",
				node.Name, joinChain(chain))
		}
	}
}
