// Package sim is lint-corpus material impersonating the deterministic
// simulation package; every marked line must be flagged by the
// determinism analyzer and every unmarked line must not.
package sim

import (
	"math/rand"
	"time"
)

// Step mixes legal seeded randomness with banned global randomness and
// wall-clock reads.
func Step(rng *rand.Rand) time.Duration {
	if rng.Intn(2) == 0 { // seeded *rand.Rand: allowed
		return 0
	}
	start := time.Now()      // want:determinism
	jitter := rand.Intn(100) // want:determinism
	_ = rand.Float64()       // want:determinism
	//lint:ignore determinism corpus: suppression must silence the next line
	stop := time.Now()
	_ = stop
	return time.Since(start) + time.Duration(jitter) // want:determinism
}

// Shuffled draws from the process-global source in two more ways.
func Shuffled(n int) []int {
	out := rand.Perm(n) // want:determinism
	rand.Shuffle(len(out), func(i, j int) { // want:determinism
		out[i], out[j] = out[j], out[i]
	})
	return out
}

// Clocked builds its own seeded generator: every call here is allowed.
func Clocked(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
