// Package tgr is lint-corpus material for the testgoroutine analyzer:
// t.Fatal*/t.Error* must not run on goroutines the test spawns.
package tgr

import (
	"sync"
	"testing"
)

func TestWorkers(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i%2 == 0 {
				t.Fatalf("worker %d failed", i) // want:testgoroutine
			}
			t.Error("also wrong") // want:testgoroutine
		}()
	}
	wg.Wait()
}

func TestChannelsAreFine(t *testing.T) {
	errs := make(chan error, 1)
	go func() { errs <- nil }()
	if err := <-errs; err != nil {
		t.Fatal(err) // test goroutine: fine
	}
}

func TestIgnored(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		//lint:ignore testgoroutine corpus: demonstrating suppression
		t.Error("suppressed")
	}()
	<-done
}
