// Package clockutil is corpus scaffolding for the walltime analyzer: a
// helper package *outside* the deterministic set that reads the wall
// clock. Its own body is legal; what the analyzer must catch is a
// deterministic package laundering the clock in through these helpers.
package clockutil

import "time"

// Stamp reads the wall clock directly.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Elapsed launders Stamp through one more hop.
func Elapsed(since int64) int64 {
	return Stamp() - since
}

// Span is pure arithmetic: no wall clock anywhere below it.
func Span(a, b int64) int64 {
	return b - a
}
