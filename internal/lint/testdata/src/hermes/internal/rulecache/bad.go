// Package rulecache is lint-corpus material impersonating the cache
// manager's packet-sampling hot path (DESIGN.md §16): the per-packet
// sampling hooks carry a zero-alloc budget (allocscan / hotpathalloc) and
// the sampling decision must be a pure function of the packet hash and the
// recency epoch — never the wall clock — or replays diverge (determinism).
package rulecache

import "time"

// Manager stands in for rulecache.Manager: a fixed sample ring plus the
// per-rule stats map the fold drains into.
type Manager struct {
	ring  [16]uint64
	head  int
	stats map[uint64]*RuleStats
}

// RuleStats stands in for the per-rule hit accumulator.
type RuleStats struct {
	hits uint64
}

// RecordHit buffers the epoch in a fresh slice per hit: flagged.
func (s *RuleStats) RecordHit(epoch uint64) {
	pending := []uint64{epoch} // want:allocscan
	s.hits += uint64(len(pending))
}

// SampleHW launders an allocation in through a helper one hop below the
// sampling root, where only the call-graph analyzer can see it.
func (m *Manager) SampleHW(dst, src uint32, id uint64) {
	if m.head == len(m.ring) {
		m.spill(id) // want:hotpathalloc
		return
	}
	m.ring[m.head] = id ^ uint64(dst)<<32 ^ uint64(src)
	m.head++
}

// spill allocates: one hop below SampleHW.
func (m *Manager) spill(id uint64) {
	overflow := make([]uint64, 0, 1)
	overflow = append(overflow, id)
	m.ring[0] = overflow[0]
}

// samplePoint derives the sampling decision from the wall clock instead of
// the packet hash and epoch: a determinism violation — replayed runs would
// promote different rules.
func (m *Manager) samplePoint(dst, src uint32) bool {
	seed := time.Now().UnixNano() // want:determinism
	return (seed^int64(dst)^int64(src))&7 == 0
}

// FoldSamples is the legal shape: it drains the preallocated ring into
// preexisting stats entries, so nothing here may be flagged.
func (m *Manager) FoldSamples(epoch uint64) {
	for i := 0; i < m.head; i++ {
		if s := m.stats[m.ring[i]]; s != nil {
			s.RecordHit(epoch)
		}
	}
	m.head = 0
}
