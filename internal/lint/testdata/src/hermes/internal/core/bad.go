// Package core is the snapshotsafety corpus: a twin of the agent's
// lock-free read path (core/view.go). A snapshot published through an
// atomic.Pointer is immutable — every write must happen before Store and
// none after Load, because concurrent readers hold the same pointer with
// no lock.
package core

import "sync/atomic"

// snapshot mirrors agentView: built fresh, published once, never written
// again.
type snapshot struct {
	gen  uint64
	hits int
	m    map[uint32]int
}

type agent struct {
	view atomic.Pointer[snapshot]
	gen  uint64
}

// resolve is the seeded read-path bug: a reader bumps a counter on the
// shared snapshot — a data race with every concurrent reader.
func (a *agent) resolve(dst uint32) int {
	v := a.view.Load()
	if v == nil {
		return -1
	}
	v.hits++ // want:snapshotsafety
	return v.m[dst]
}

// touch writes through its parameter; handing it a published snapshot is
// the same race one call removed.
func touch(s *snapshot) {
	s.gen++
}

// bump writes through its receiver.
func (s *snapshot) bump() {
	s.hits++
}

func (a *agent) refresh() {
	v := a.view.Load()
	if v == nil {
		return
	}
	touch(v)       // want:snapshotsafety
	v.bump()       // want:snapshotsafety
	delete(v.m, 0) // want:snapshotsafety
}

// rebuild is the clean pattern: build a fresh snapshot, finish every
// write, Store last.
func (a *agent) rebuild(gen uint64) *snapshot {
	v := &snapshot{gen: gen, m: make(map[uint32]int)}
	v.hits = 0
	a.view.Store(v)
	return v
}

// lateWrite publishes first and writes after: readers already hold v.
func (a *agent) lateWrite(gen uint64) {
	v := &snapshot{gen: gen}
	a.view.Store(v)
	v.hits = 1 // want:snapshotsafety
}

// current launders the published pointer through a helper return.
func (a *agent) current() *snapshot {
	return a.view.Load()
}

func (a *agent) laundered() {
	v := a.current()
	if v == nil {
		return
	}
	v.hits++ // want:snapshotsafety
}

// reseat rebinds the local to a fresh value before writing: the dataflow
// kill keeps this clean.
func (a *agent) reseat() *snapshot {
	v := a.view.Load()
	v = &snapshot{m: map[uint32]int{}}
	v.hits++
	return v
}
