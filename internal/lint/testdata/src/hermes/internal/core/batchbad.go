// batchbad.go is the hotpathalloc batch corpus: a twin of the agent's
// vectored entry points (core/batch.go). The batch insert path promises
// 0 allocs/op at steady state, so the exact-name roots (InsertBatch,
// ApplyBatch, insertBatched, ...) carry the same zero-alloc budget the
// lookup path does — growing a result slice per call or laundering an
// allocation through a helper are the seeded bugs.
package core

type batchAgent struct {
	rules map[uint64]uint64
	pool  [][]uint64
}

// install allocates: one hop below the batch root, where the
// intraprocedural scan cannot see it.
func (a *batchAgent) install(id uint64) {
	a.pool = append(a.pool, make([]uint64, 4))
	a.rules[id] = id
}

// InsertBatch is a batch root by exact name: the per-op result slice is
// grown per call instead of reusing the caller's buffer, and the helper
// carries an allocation in.
func (a *batchAgent) InsertBatch(ids []uint64) []uint64 {
	out := make([]uint64, 0, len(ids)) // want:hotpathalloc
	for _, id := range ids {
		a.install(id)         // want:hotpathalloc
		out = append(out, id) // want:hotpathalloc
	}
	return out
}

// insertBatched is the clean pattern: pure bookkeeping, no allocation.
func (a *batchAgent) insertBatched(id uint64) bool {
	if _, dup := a.rules[id]; dup {
		return false
	}
	a.rules[id] = id
	return true
}

// ApplyBatch chains through another batch root: the callee justifies its
// own budget, so this call site stays clean.
func (a *batchAgent) ApplyBatch(ids []uint64) int {
	n := 0
	for _, id := range ids {
		if a.insertBatched(id) {
			n++
		}
	}
	return n
}
