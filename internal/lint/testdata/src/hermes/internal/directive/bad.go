// Package directive is the lintdirective corpus: a suppression must name
// an analyzer the suite actually runs and must justify itself with
// reason text. Bare and mistargeted directives are findings — and they
// cannot suppress themselves.
package directive

func directives() {
	a := 1
	_ = a /* want:lintdirective */ //lint:ignore determinism
	b := 2
	_ = b /* want:lintdirective */ //lint:ignore nosuchpass typo'd names suppress nothing
	c := 3
	_ = c /* want:lintdirective */ //lint:ignore
	d := 4
	_ = d //lint:ignore lockcheck corpus: a justified suppression with reason text is clean
}

var _ = directives
