// Package obs is lint-corpus material impersonating the observability
// record path: per-sample record functions must not allocate (allocscan)
// and the package must never read the wall clock (determinism) — events
// are stamped with caller-provided virtual time so seeded chaos schedules
// replay identical traces.
package obs

import "time"

// Histogram stands in for obs.Histogram: fixed-footprint buckets the legal
// record path reuses.
type Histogram struct {
	buckets []uint64
	labels  map[string]string
}

// Record allocates a label map per sample: flagged.
func (h *Histogram) Record(v uint64) {
	tags := make(map[string]string) // want:allocscan
	tags["v"] = "sample"
	if int(v) < len(h.buckets) {
		h.buckets[v]++
	}
	_ = tags
}

// RecordDuration buffers samples in a fresh slice per call: the literal and
// the growing append are both flagged.
func (h *Histogram) RecordDuration(d time.Duration) {
	samples := []uint64{}                // want:allocscan
	samples = append(samples, uint64(d)) // want:allocscan
	if len(samples) > 0 && int(samples[0]) < len(h.buckets) {
		h.buckets[samples[0]]++
	}
}

// Inc stamps the event with the wall clock instead of caller-provided
// virtual time: a determinism violation, not an allocation.
func (h *Histogram) Inc() {
	at := time.Now() // want:determinism
	if at.IsZero() {
		return
	}
	h.buckets[0]++
}

// Add is a legal record-path function: it touches only preallocated state,
// so nothing here may be flagged.
func (h *Histogram) Add(v uint64) {
	if int(v) < len(h.buckets) {
		h.buckets[v] += v
	}
}

// Reset is off the record path (snapshot/lifecycle code); it may allocate
// freely and none of these lines may be flagged.
func (h *Histogram) Reset() {
	h.buckets = make([]uint64, 64)
	h.labels = map[string]string{}
}
