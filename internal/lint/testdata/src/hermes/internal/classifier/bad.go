// Package classifier is the hotpathalloc corpus: allocations hidden one
// and two calls below a zero-alloc root, where the intraprocedural
// allocscan cannot see them, plus a direct allocation both analyzers see
// (the "alloc" dedup group must keep exactly one finding — allocscan's).
package classifier

type Index struct {
	scratch []uint32
	table   map[uint32][]uint32
}

// expand allocates: one hop below the root.
func (ix *Index) expand(n int) {
	ix.scratch = append(ix.scratch, make([]uint32, n)...)
}

// widen launders the allocation through a second hop.
func (ix *Index) widen(n int) {
	ix.expand(n)
}

// Lookup is a zero-alloc root; both helper calls carry an allocation in.
func (ix *Index) Lookup(key uint32) ([]uint32, bool) {
	if len(ix.scratch) == 0 {
		ix.expand(8) // want:hotpathalloc
	}
	ix.widen(4) // want:hotpathalloc
	v, ok := ix.table[key]
	return v, ok
}

// LookupVia chains through another root: the callee justifies its own
// budget, so this call site stays clean.
func (ix *Index) LookupVia(key uint32) ([]uint32, bool) {
	return ix.Lookup(key)
}

// lookupSlow allocates directly. allocscan and hotpathalloc both see
// these positions; dedup keeps the allocscan finding only.
func (ix *Index) lookupSlow(key uint32) []uint32 {
	out := make([]uint32, 0, 4)        // want:allocscan
	out = append(out, ix.table[key]...) // want:allocscan
	return out
}
