// Package predict is the walltime corpus: a deterministic package whose
// own body never mentions time.Now — the intraprocedural determinism
// analyzer sees nothing — but whose helper calls transitively read the
// wall clock.
package predict

import "hermes/internal/clockutil"

func horizon(last int64) int64 {
	t := clockutil.Stamp() // want:walltime
	return t - last
}

func window(last int64) int64 {
	return clockutil.Elapsed(last) // want:walltime
}

// spread only reaches pure arithmetic: clean.
func spread(a, b int64) int64 {
	return clockutil.Span(a, b)
}

var _ = horizon
var _ = window
var _ = spread
