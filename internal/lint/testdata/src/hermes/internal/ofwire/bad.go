// Package ofwire is lint-corpus material impersonating the wire codec;
// the narrowing analyzer must flag every marked conversion and accept the
// guarded, constant and suppressed ones.
package ofwire

const maxFrame = 1 << 16

// EncodeLen wraps silently at exactly 64KiB — the PR 1 bug class.
func EncodeLen(total int) uint16 {
	return uint16(total) // want:narrowing
}

// PackPort narrows a 32-bit counter into a byte without a guard.
func PackPort(port uint32) uint8 {
	return uint8(port) // want:narrowing
}

// CheckedLen guards the range first, so the conversion is safe.
func CheckedLen(total int) (uint16, bool) {
	if total < 0 || total >= maxFrame {
		return 0, false
	}
	return uint16(total), true
}

// IgnoredLen vouches for the caller with a suppression comment.
func IgnoredLen(total int) uint16 {
	//lint:ignore narrowing corpus: caller guarantees the range
	return uint16(total)
}

// Widths that cannot lose bits are not narrowing.
func Widen(v uint8) uint16 { return uint16(v) }

// Constants that fit are fine (out-of-range constants are already
// compile errors, so the analyzer never sees them).
func Consts() (uint16, uint8) {
	return uint16(0xFFFF), uint8(255)
}
