// chanbad.go is the chanblock corpus: rendezvous on unbuffered channels
// inside critical sections, the deadlock shape where the partner
// goroutine needs the same lock to reach its end of the channel.
package fleet

import "sync"

type notifier struct {
	mu     sync.Mutex
	wake   chan struct{} // unbuffered
	drain  chan int      // buffered: sends complete without a partner
	events chan int      // unbuffered
}

func newNotifier() *notifier {
	return &notifier{
		wake:   make(chan struct{}),
		drain:  make(chan int, 8),
		events: make(chan int),
	}
}

// signal parks inside the critical section until a partner arrives.
func (n *notifier) signal() {
	n.mu.Lock()
	n.wake <- struct{}{} // want:chanblock
	n.mu.Unlock()
}

// await receives under a deferred unlock: the lock is held until return,
// so the receive still blocks the critical section.
func (n *notifier) await() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return <-n.events // want:chanblock
}

// record sends on a buffered channel: cannot rendezvous-block.
func (n *notifier) record(v int) {
	n.mu.Lock()
	n.drain <- v
	n.mu.Unlock()
}

// tryWake is non-blocking by construction: select with default.
func (n *notifier) tryWake() {
	n.mu.Lock()
	select {
	case n.wake <- struct{}{}:
	default:
	}
	n.mu.Unlock()
}

// wakeUnlocked sends after releasing the lock.
func (n *notifier) wakeUnlocked() {
	n.mu.Lock()
	n.mu.Unlock()
	n.wake <- struct{}{}
}

var _ = newNotifier
