// Package fleet is lint-corpus material impersonating the fleet control
// plane; the lockcheck analyzer must flag every marked exit and accept
// the defer / unlock-before-return / branch-merge patterns.
package fleet

import (
	"errors"
	"sync"
)

var errInvalid = errors.New("invalid")

// Counter exercises write-lock discipline.
type Counter struct {
	mu sync.Mutex
	n  int
}

// AddPositive leaks the lock on its error path.
func (c *Counter) AddPositive(d int) error {
	c.mu.Lock()
	if d <= 0 {
		return errInvalid // want:lockcheck
	}
	c.n += d
	c.mu.Unlock()
	return nil
}

// Freeze falls off the end of the function still holding the lock.
func (c *Counter) Freeze() {
	c.mu.Lock()
	c.n = -1
} // want:lockcheck

// Get releases via defer: fine.
func (c *Counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Set releases inline before falling off the end: fine.
func (c *Counter) Set(v int) {
	c.mu.Lock()
	c.n = v
	c.mu.Unlock()
}

// Branchy releases on every path: fine.
func (c *Counter) Branchy(b bool) int {
	c.mu.Lock()
	if b {
		c.mu.Unlock()
		return 1
	}
	c.mu.Unlock()
	return 0
}

// Handoff intentionally returns locked; the suppression vouches for it.
func (c *Counter) Handoff() *sync.Mutex {
	c.mu.Lock()
	//lint:ignore lockcheck corpus: caller unlocks
	return &c.mu
}

// Gauge exercises read-lock discipline.
type Gauge struct {
	mu sync.RWMutex
	v  int
}

// Bad leaks the read lock on its early return.
func (g *Gauge) Bad() int {
	g.mu.RLock()
	if g.v < 0 {
		return -1 // want:lockcheck
	}
	g.mu.RUnlock()
	return g.v
}

// Good pairs RLock with a deferred RUnlock: fine.
func (g *Gauge) Good() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

// DeferredClosure releases inside a deferred closure: fine.
func (g *Gauge) DeferredClosure() int {
	g.mu.RLock()
	defer func() {
		g.mu.RUnlock()
	}()
	return g.v
}
