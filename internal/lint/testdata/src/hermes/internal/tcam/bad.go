// Package tcam is lint-corpus material impersonating the TCAM model's
// packet-lookup hot path; every marked line must be flagged by the
// allocscan analyzer and every unmarked line must not.
package tcam

// Rule stands in for classifier.Rule.
type Rule struct {
	ID       uint64
	Priority int32
}

// Table stands in for tcam.Table: entries plus preallocated scratch the
// legal lookups reuse.
type Table struct {
	entries []Rule
	scratch []Rule
	seen    map[uint64]bool
}

// LookupIndexed allocates a dedup map per packet: flagged.
func (t *Table) LookupIndexed(dst uint32) (Rule, bool) {
	seen := make(map[uint64]bool) // want:allocscan
	for _, r := range t.entries {
		if seen[r.ID] {
			continue
		}
		seen[r.ID] = true
		if uint32(r.ID) == dst {
			return r, true
		}
	}
	return Rule{}, false
}

// lookupCandidates grows a fresh slice per packet and seeds it with a
// slice literal: both flagged.
func (t *Table) lookupCandidates(dst uint32) []Rule {
	out := []Rule{} // want:allocscan
	for _, r := range t.entries {
		if uint32(r.ID)&dst != 0 {
			out = append(out, r) // want:allocscan
		}
	}
	return out
}

// Iter stands in for classifier.MatchIter.
type Iter struct {
	rules []Rule
	pos   int
}

// Next materializes a map literal per step: flagged.
func (it *Iter) Next() (Rule, bool) {
	weights := map[int32]int{0: 1} // want:allocscan
	for it.pos < len(it.rules) {
		r := it.rules[it.pos]
		it.pos++
		if weights[r.Priority] > 0 {
			return r, true
		}
	}
	return Rule{}, false
}

// LookupClean is a legal hot-path function: it only reuses preallocated
// table state, so nothing here may be flagged.
func (t *Table) LookupClean(dst uint32) (Rule, bool) {
	t.scratch = t.scratch[:0]
	for k := range t.seen {
		delete(t.seen, k)
	}
	var best Rule
	found := false
	for _, r := range t.entries {
		if uint32(r.ID) == dst && (!found || r.Priority > best.Priority) {
			best, found = r, true
		}
	}
	return best, found
}

// Rebuild is a mutator, not a lookup: it may allocate freely and none of
// these lines may be flagged.
func (t *Table) Rebuild(rules []Rule) {
	t.seen = make(map[uint64]bool, len(rules))
	t.entries = append([]Rule{}, rules...)
	t.scratch = make([]Rule, 0, len(rules))
}
