// Package wrap is lint-corpus material for the wrapcheck analyzer: error
// values formatted into fmt.Errorf must use %w, not %v/%s.
package wrap

import (
	"errors"
	"fmt"
)

// ErrBase is the sentinel callers match with errors.Is.
var ErrBase = errors.New("base")

func step(string) error { return ErrBase }

// Open flattens the chain with %v: errors.Is(err, ErrBase) breaks.
func Open(name string) error {
	if err := step(name); err != nil {
		return fmt.Errorf("wrap: open %s: %v", name, err) // want:wrapcheck
	}
	return nil
}

// Close flattens the chain with %s.
func Close(name string) error {
	if err := step(name); err != nil {
		return fmt.Errorf("wrap: close %s: %s", name, err) // want:wrapcheck
	}
	return nil
}

// Good wraps with %w and formats non-errors with %v: both fine.
func Good(name string) error {
	if err := step(name); err != nil {
		return fmt.Errorf("wrap: good %s (attempt %v): %w", name, 1, err)
	}
	return nil
}

// Ignored breaks the chain deliberately and says so.
func Ignored() error {
	err := step("x")
	//lint:ignore wrapcheck corpus: user-facing message, chain broken on purpose
	return fmt.Errorf("wrap: %v", err)
}
