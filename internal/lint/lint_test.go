package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// expectation is one (file, line, analyzer) triple, either expected from a
// "// want:<analyzer>" corpus marker or produced by a run.
type expectation struct {
	file     string
	line     int
	analyzer string
}

func (e expectation) String() string {
	return fmt.Sprintf("%s:%d [%s]", e.file, e.line, e.analyzer)
}

// wantMarkers scans the corpus for "// want:a" or "// want:a,b" markers.
func wantMarkers(t *testing.T, root string) []expectation {
	t.Helper()
	var out []expectation
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			i := strings.Index(text, "want:")
			if i < 0 {
				continue
			}
			names := strings.Fields(text[i+len("want:"):])
			if len(names) == 0 {
				continue
			}
			for _, name := range strings.Split(names[0], ",") {
				out = append(out, expectation{file: path, line: line, analyzer: name})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("scanning corpus markers: %v", err)
	}
	return out
}

// TestCorpus asserts that on the known-bad corpus every analyzer fires
// exactly where a marker says it should: no missed findings, no false
// positives on the good snippets, and //lint:ignore suppression honored.
func TestCorpus(t *testing.T) {
	const root = "testdata/src"
	pkgs, fset, err := Load([]string{root + "/..."})
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("corpus loaded zero packages")
	}

	findings := Run(Analyzers(), pkgs, fset)
	var got []expectation
	for _, f := range findings {
		got = append(got, expectation{file: f.File, line: f.Line, analyzer: f.Analyzer})
	}
	want := wantMarkers(t, root)

	sortExp := func(es []expectation) {
		sort.Slice(es, func(i, j int) bool { return es[i].String() < es[j].String() })
	}
	sortExp(got)
	sortExp(want)

	missed := diff(want, got)
	extra := diff(got, want)
	for _, e := range missed {
		t.Errorf("analyzer did not fire: want finding at %s", e)
	}
	for _, e := range extra {
		t.Errorf("unexpected finding (false positive or broken suppression): %s", e)
	}
	if len(want) == 0 {
		t.Fatal("corpus has no want markers; the self-test is vacuous")
	}
}

// TestEveryAnalyzerCovered guards the corpus itself: each analyzer in the
// suite must have at least one marker, so a new analyzer cannot ship
// without known-bad material.
func TestEveryAnalyzerCovered(t *testing.T) {
	want := wantMarkers(t, "testdata/src")
	byAnalyzer := make(map[string]int)
	for _, e := range want {
		byAnalyzer[e.analyzer]++
	}
	for _, a := range Analyzers() {
		if byAnalyzer[a.Name] == 0 {
			t.Errorf("analyzer %s has no corpus markers", a.Name)
		}
	}
}

// diff returns the elements of a not present in b (both sorted).
func diff(a, b []expectation) []expectation {
	seen := make(map[expectation]bool, len(b))
	for _, e := range b {
		seen[e] = true
	}
	var out []expectation
	for _, e := range a {
		if !seen[e] {
			out = append(out, e)
		}
	}
	return out
}

func TestParseVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   []verb
		ok     bool
	}{
		{"plain", nil, true},
		{"%v", []verb{{'v', 0}}, true},
		{"a %s b %w c %d", []verb{{'s', 0}, {'w', 1}, {'d', 2}}, true},
		{"100%% done %v", []verb{{'v', 0}}, true},
		{"%+v %#v %10s %.2f", []verb{{'v', 0}, {'v', 1}, {'s', 2}, {'f', 3}}, true},
		{"%[1]v", nil, false},
		{"%*d", nil, false},
	}
	for _, c := range cases {
		got, ok := parseVerbs(c.format)
		if ok != c.ok {
			t.Errorf("parseVerbs(%q) ok = %v, want %v", c.format, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseVerbs(%q) = %v, want %v", c.format, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseVerbs(%q)[%d] = %v, want %v", c.format, i, got[i], c.want[i])
			}
		}
	}
}

// TestJSONOutput keeps the machine-readable format stable for CI tooling.
func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	err := WriteJSON(&buf, []Finding{{
		Analyzer: "narrowing", File: "x.go", Line: 3, Col: 9, Message: "m",
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, wantField := range []string{`"analyzer"`, `"file"`, `"line"`, `"col"`, `"message"`} {
		if !strings.Contains(buf.String(), wantField) {
			t.Errorf("JSON output missing field %s: %s", wantField, buf.String())
		}
	}
}
