package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WallTimeAnalyzer is the interprocedural half of the determinism
// invariant: the intraprocedural determinism analyzer flags time.Now
// written *inside* a deterministic package, but a helper in a
// non-deterministic package can launder the wall clock in — sim calls
// util.Stamp(), util.Stamp calls time.Now, and every experiment stops
// replaying. This pass walks the module call graph (callgraph.go): any
// function reachable from a call site in a deterministic package that
// transitively reads the wall clock is reported at that call site, with
// the chain that carries the clock in. Calls to helpers *within* the
// deterministic set are exempt here — determinism already polices their
// bodies directly, and reporting both would double every finding.
var WallTimeAnalyzer = &Analyzer{
	Name:       "walltime",
	Doc:        "flags calls from deterministic packages to helpers that transitively read the wall clock",
	DedupGroup: "walltime",
	Paths:      deterministicPaths,
	// Tests may legitimately reach harness helpers that poll wall-clock
	// deadlines (leak detection); determinism still flags direct use.
	SkipTests: true,
	Run:       runWallTime,
}

// wallClockReach computes, once per Run, which module functions
// transitively reach time.Now/Since/Until.
func wallClockReach(prog *Program) map[string]*ReachInfo {
	return prog.Cached("walltime.reach", func() any {
		g := prog.CallGraph()
		return g.Reaches(func(fn *FuncNode) (token.Pos, bool) {
			return directWallClockUse(fn)
		})
	}).(map[string]*ReachInfo)
}

// directWallClockUse finds the first banned time.* selector in a function
// body.
func directWallClockUse(fn *FuncNode) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !bannedTime[sel.Sel.Name] {
			return true
		}
		if pn, ok := fn.Pkg.Info.Uses[identOf(sel.X)].(*types.PkgName); ok &&
			pn.Imported().Path() == "time" {
			pos = sel.Pos()
			found = true
			return false
		}
		return true
	})
	return pos, found
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := e.(*ast.Ident)
	return id
}

func runWallTime(p *Pass) {
	reach := wallClockReach(p.Prog)
	g := p.Prog.CallGraph()
	for _, id := range g.order {
		node := g.Funcs[id]
		if node.Pkg != p.Pkg || !p.DeclInScope(node.Decl) {
			continue
		}
		for _, cs := range node.Calls {
			if cs.Callee == "" {
				continue
			}
			info := reach[cs.Callee]
			if info == nil {
				continue
			}
			callee := g.Node(cs.Callee)
			if callee == nil || isDeterministicPath(callee.Pkg.Path) {
				// Determinism checks those bodies line by line already.
				continue
			}
			chain := append([]string{shortFuncID(cs.Callee)}, g.Chain(reach, cs.Callee)...)
			sink := finalWallClockPos(p, reach, cs.Callee)
			p.Reportf(cs.Call.Pos(),
				"call reaches wall-clock time via %s (time.Now/Since at %s); inject a virtual clock",
				joinChain(chain), sink)
		}
	}
}

// finalWallClockPos walks the witness chain down to the direct wall-clock
// read and renders its position.
func finalWallClockPos(p *Pass, reach map[string]*ReachInfo, id string) string {
	for depth := 0; depth < 32; depth++ {
		info := reach[id]
		if info == nil {
			return "?"
		}
		if info.Direct {
			pos := p.Fset.Position(info.Pos)
			return shortPath(pos.Filename, pos.Line)
		}
		id = info.Via
	}
	return "?"
}

func joinChain(chain []string) string {
	return strings.Join(chain, " → ")
}

// shortPath trims a filename to its last two path elements for message
// brevity (full paths are already in the finding position).
func shortPath(file string, line int) string {
	parts := strings.Split(file, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return fmt.Sprintf("%s:%d", strings.Join(parts, "/"), line)
}
