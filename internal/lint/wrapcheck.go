package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// WrapcheckAnalyzer guards error-chain preservation: library code that
// formats an error into a new error with fmt.Errorf must use %w, so
// callers can still errors.Is/As against the typed sentinels the fleet
// and codec rely on (ErrTableFull, ErrClientClosed, remote *ErrorBody, …).
// A %v or %s flattens the chain to text and silently breaks them.
var WrapcheckAnalyzer = &Analyzer{
	Name:      "wrapcheck",
	Doc:       "flags fmt.Errorf calls formatting an error with %v/%s instead of %w",
	SkipTests: true,
	SkipMain:  true,
	Run:       runWrapcheck,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func runWrapcheck(p *Pass) {
	for _, file := range p.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Errorf" || p.PkgNameOf(sel.X) != "fmt" {
				return true
			}
			format, ok := constantString(p, call.Args[0])
			if !ok {
				return true
			}
			verbs, ok := parseVerbs(format)
			if !ok {
				return true // indexed or starred format: out of scope
			}
			for _, v := range verbs {
				argIdx := 1 + v.arg
				if v.letter != 'v' && v.letter != 's' {
					continue
				}
				if argIdx >= len(call.Args) {
					continue
				}
				arg := call.Args[argIdx]
				t := p.TypeOf(arg)
				if t == nil || !types.Implements(t, errorIface) {
					continue
				}
				p.Reportf(arg.Pos(),
					"error formatted with %%%c breaks the error chain; use %%w", v.letter)
			}
			return true
		})
	}
}

func constantString(p *Pass, e ast.Expr) (string, bool) {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// verb is one formatting directive mapped to its sequential argument.
type verb struct {
	letter byte
	arg    int
}

// parseVerbs extracts the verbs of a fmt format string together with the
// argument index each consumes. It bails out (ok=false) on explicit
// argument indexes (%[1]v) and starred widths (%*d), which this codebase
// does not use.
func parseVerbs(format string) ([]verb, bool) {
	var verbs []verb
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// flags, width, precision
		for i < len(format) {
			c := format[i]
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' ||
				c == '.' || (c >= '1' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		switch c := format[i]; {
		case c == '%':
			// literal percent, consumes nothing
		case c == '[' || c == '*':
			return nil, false
		default:
			verbs = append(verbs, verb{letter: c, arg: arg})
			arg++
		}
	}
	return verbs, true
}
