package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AllocscanAnalyzer guards the zero-allocation packet path: Table.Lookup
// runs per simulated packet and the agent's snapshot read path promises 0
// allocs/op (BenchmarkTableLookup, BenchmarkAgentLookupParallel). A stray
// make(map...), growing append, or map/slice composite literal inside a
// lookup-path function turns every packet into a heap allocation and a GC
// assist — a regression benchmarks catch late and this check catches at
// lint time. Mutators (Insert, Delete, Reconcile, ...) are free to
// allocate; only functions on the per-packet path are scanned.
//
// The obs record path is held to the same standard: Record/Inc/Add/Set run
// on every flow-mod and promise 0 allocs/op (BenchmarkHistogramRecord and
// friends), so inside internal/obs the scanned set is the record-path
// functions instead of the lookup ones. Snapshot, exposition, and capture
// paths allocate freely.
var AllocscanAnalyzer = &Analyzer{
	Name:       "allocscan",
	Doc:        "flags per-call heap allocation in the packet-lookup and metric-record hot paths",
	DedupGroup: "alloc",
	Paths: []string{
		"internal/tcam",
		"internal/classifier",
		"internal/obs",
		"internal/rulecache",
	},
	SkipTests: true,
	Run:       runAllocscan,
}

// hotPathFunc reports whether a function is on the per-packet lookup path:
// anything named *Lookup*/*lookup* plus the trie iteration pair backing
// LookupIndexed.
func hotPathFunc(name string) bool {
	return strings.Contains(name, "Lookup") || strings.Contains(name, "lookup") ||
		name == "MatchCandidates" || name == "Next"
}

// obsRecordFuncs are the per-sample record-path functions of internal/obs.
// Exact names, not substrings: Snapshot/Capture/registry code shares the
// package and is allowed to allocate.
var obsRecordFuncs = map[string]bool{
	"Record":         true,
	"RecordDuration": true,
	"Inc":            true,
	"Add":            true,
	"Set":            true,
	"bucketIndex":    true,
	"shardHint":      true,
}

// cacheSampleFuncs are the per-packet sampling hooks of internal/rulecache
// (DESIGN.md §16): they ride the lookup fast path, so like the obs record
// path they carry a zero-alloc budget. The fold runs under the agent lock
// but inside the tick, so it keeps the budget too. Rebalance, snapshot,
// and registration code in the same package allocates freely.
var cacheSampleFuncs = map[string]bool{
	"SampleHW":    true,
	"SampleSoft":  true,
	"RecordMiss":  true,
	"RecordHit":   true,
	"samplePoint": true,
	"FoldSamples": true,
}

// isRulecachePath reports whether the package is internal/rulecache
// (module- or corpus-relative).
func isRulecachePath(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	return path == "internal/rulecache" || strings.HasSuffix(path, "/internal/rulecache")
}

func runAllocscan(p *Pass) {
	hot := hotPathFunc
	if path := strings.TrimSuffix(p.Pkg.Path, "_test"); path == "internal/obs" ||
		strings.HasSuffix(path, "/internal/obs") {
		hot = func(name string) bool { return obsRecordFuncs[name] }
	} else if isRulecachePath(path) {
		hot = func(name string) bool { return hotPathFunc(name) || cacheSampleFuncs[name] }
	}
	for _, file := range p.Files() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hot(fn.Name.Name) {
				continue
			}
			scanAllocs(p, fn)
		}
	}
}

func scanAllocs(p *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			id, ok := n.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if _, builtin := p.Pkg.Info.Uses[id].(*types.Builtin); !builtin {
				return true
			}
			switch id.Name {
			case "make":
				p.Reportf(n.Pos(),
					"%s allocates with make per call; hoist the allocation into the index or table state",
					fn.Name.Name)
			case "append":
				p.Reportf(n.Pos(),
					"%s grows a slice per call; lookup must reuse preallocated state",
					fn.Name.Name)
			}
		case *ast.CompositeLit:
			t := p.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map, *types.Slice:
				p.Reportf(n.Pos(),
					"%s builds a %s literal per call; lookup must not allocate",
					fn.Name.Name, typeKind(t))
			}
		}
		return true
	})
}

func typeKind(t types.Type) string {
	if _, ok := t.Underlying().(*types.Map); ok {
		return "map"
	}
	return "slice"
}
