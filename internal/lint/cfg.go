package lint

import (
	"go/ast"
	"go/token"
)

// This file builds per-function control-flow graphs, the substrate of the
// hermes-vet dataflow analyses (DESIGN.md §13). The graph is
// statement-level: every block holds the AST nodes that execute in order
// (statements plus the condition expressions evaluated at its end), and
// edges follow Go control flow including loops with back edges,
// switch/select dispatch, fallthrough, labeled break/continue, goto, and
// the two ways a function leaves a block early — return and panic.
// Function literals are *not* inlined: a FuncLit nested in a body is a
// single opaque node here and gets its own CFG when analyzed.

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks in creation order; Blocks[0] is Entry, Blocks[1] is Exit.
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// Block is one straight-line run of AST nodes.
type Block struct {
	Index int
	// Kind labels the block's syntactic role ("entry", "exit", "body",
	// "if.then", "for.head", ...) for tests and debugging.
	Kind  string
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Term is the statement that explicitly ends the block — a
	// *ast.ReturnStmt, *ast.BranchStmt, or a panic-call *ast.ExprStmt —
	// or nil when control falls through to the successor. The exit
	// block's fall-off predecessors (Term == nil) are where "function
	// ends with X still held"-style diagnostics anchor.
	Term ast.Stmt
}

// Reachable reports whether the block has a path from the entry block.
// Blocks created for dead code (statements after a return) have no
// predecessors and are skipped by the dataflow analyses.
func (b *Block) Reachable() bool {
	return b.Kind == "entry" || len(b.Preds) > 0
}

type cfgBuilder struct {
	cfg *CFG
	// breakTo / continueTo are the current targets for unlabeled
	// break/continue; the label maps handle the labeled forms.
	breakTo    *Block
	continueTo *Block
	breakStack []*Block
	contStack  []*Block
	labelBreak map[string]*Block
	labelCont  map[string]*Block
	gotoTarget map[string]*Block
}

// BuildCFG constructs the graph for one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:        &CFG{},
		labelBreak: make(map[string]*Block),
		labelCont:  make(map[string]*Block),
		gotoTarget: make(map[string]*Block),
	}
	entry := b.newBlock("entry")
	exit := b.newBlock("exit")
	b.cfg.Entry, b.cfg.Exit = entry, exit
	last := b.stmts(body.List, entry)
	if last != nil {
		b.edge(last, exit)
	}
	for _, blk := range b.cfg.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// stmts threads a statement list through the graph starting at cur and
// returns the block control falls out of, or nil when every path leaves
// the list explicitly (return/branch/panic).
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *Block) *Block {
	for _, s := range list {
		if cur == nil {
			// Dead code after a terminator still gets blocks (they are
			// simply unreachable), so analyzers can choose to look.
			cur = b.newBlock("dead")
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

func (b *cfgBuilder) stmt(s ast.Stmt, cur *Block) *Block {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(st.List, cur)

	case *ast.LabeledStmt:
		// The labeled statement itself starts a fresh block so goto and
		// labeled continue have a stable target.
		target := b.gotoBlock(st.Label.Name)
		b.edge(cur, target)
		switch inner := st.Stmt.(type) {
		case *ast.ForStmt:
			return b.forStmt(inner, target, st.Label.Name)
		case *ast.RangeStmt:
			return b.rangeStmt(inner, target, st.Label.Name)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			return b.switchStmt(inner, target, st.Label.Name)
		case *ast.SelectStmt:
			return b.selectStmt(inner, target, st.Label.Name)
		default:
			return b.stmt(st.Stmt, target)
		}

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, st)
		cur.Term = st
		b.edge(cur, b.cfg.Exit)
		return nil

	case *ast.BranchStmt:
		if st.Tok == token.FALLTHROUGH {
			// Control continues into the next case clause; the switch
			// builder wires that edge. Not a real terminator.
			cur.Nodes = append(cur.Nodes, st)
			return cur
		}
		cur.Nodes = append(cur.Nodes, st)
		cur.Term = st
		switch st.Tok {
		case token.BREAK:
			if st.Label != nil {
				if t := b.labelBreak[st.Label.Name]; t != nil {
					b.edge(cur, t)
				}
			} else if b.breakTo != nil {
				b.edge(cur, b.breakTo)
			}
		case token.CONTINUE:
			if st.Label != nil {
				if t := b.labelCont[st.Label.Name]; t != nil {
					b.edge(cur, t)
				}
			} else if b.continueTo != nil {
				b.edge(cur, b.continueTo)
			}
		case token.GOTO:
			b.edge(cur, b.gotoBlock(st.Label.Name))
		}
		return nil

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, st)
		if isPanicCall(st.X) {
			cur.Term = st
			b.edge(cur, b.cfg.Exit)
			return nil
		}
		return cur

	case *ast.IfStmt:
		if st.Init != nil {
			cur = b.stmt(st.Init, cur)
		}
		cur.Nodes = append(cur.Nodes, st.Cond)
		thenB := b.newBlock("if.then")
		b.edge(cur, thenB)
		thenEnd := b.stmts(st.Body.List, thenB)
		var elseEnd *Block
		hasElse := st.Else != nil
		if hasElse {
			elseB := b.newBlock("if.else")
			b.edge(cur, elseB)
			elseEnd = b.stmt(st.Else, elseB)
		}
		join := b.newBlock("if.join")
		if !hasElse {
			b.edge(cur, join)
		}
		if thenEnd != nil {
			b.edge(thenEnd, join)
		}
		if elseEnd != nil {
			b.edge(elseEnd, join)
		}
		return join

	case *ast.ForStmt:
		return b.forStmt(st, cur, "")

	case *ast.RangeStmt:
		return b.rangeStmt(st, cur, "")

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return b.switchStmt(s, cur, "")

	case *ast.SelectStmt:
		return b.selectStmt(st, cur, "")

	default:
		// Assign, decl, defer, go, send, incdec, empty: straight-line.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

func (b *cfgBuilder) forStmt(st *ast.ForStmt, cur *Block, label string) *Block {
	if st.Init != nil {
		cur = b.stmt(st.Init, cur)
	}
	head := b.newBlock("for.head")
	b.edge(cur, head)
	if st.Cond != nil {
		head.Nodes = append(head.Nodes, st.Cond)
	}
	body := b.newBlock("for.body")
	exit := b.newBlock("for.exit")
	b.edge(head, body)
	if st.Cond != nil {
		b.edge(head, exit)
	}
	post := head
	if st.Post != nil {
		post = b.newBlock("for.post")
		post.Nodes = append(post.Nodes, st.Post)
		b.edge(post, head)
	}
	b.pushLoop(label, exit, post)
	bodyEnd := b.stmts(st.Body.List, body)
	b.popLoop(label)
	if bodyEnd != nil {
		b.edge(bodyEnd, post)
	}
	return exit
}

func (b *cfgBuilder) rangeStmt(st *ast.RangeStmt, cur *Block, label string) *Block {
	head := b.newBlock("range.head")
	head.Nodes = append(head.Nodes, st.X)
	b.edge(cur, head)
	body := b.newBlock("range.body")
	exit := b.newBlock("range.exit")
	b.edge(head, body)
	b.edge(head, exit)
	b.pushLoop(label, exit, head)
	bodyEnd := b.stmts(st.Body.List, body)
	b.popLoop(label)
	if bodyEnd != nil {
		b.edge(bodyEnd, head)
	}
	return exit
}

// switchStmt wires expression and type switches: the dispatch block
// branches to every clause, fallthrough chains clause bodies, and a
// missing default adds a dispatch→join edge (the switch may match
// nothing).
func (b *cfgBuilder) switchStmt(s ast.Stmt, cur *Block, label string) *Block {
	var clauses []ast.Stmt
	switch st := s.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			cur = b.stmt(st.Init, cur)
		}
		if st.Tag != nil {
			cur.Nodes = append(cur.Nodes, st.Tag)
		}
		clauses = st.Body.List
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			cur = b.stmt(st.Init, cur)
		}
		cur.Nodes = append(cur.Nodes, st.Assign)
		clauses = st.Body.List
	}
	join := b.newBlock("switch.join")
	b.pushSwitch(label, join)
	hasDefault := false
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock("switch.case")
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			cur.Nodes = append(cur.Nodes, e)
		}
		b.edge(cur, blocks[i])
		end := b.stmts(cc.Body, blocks[i])
		if end != nil {
			if fallsThrough(cc.Body) && i+1 < len(blocks) {
				b.edge(end, blocks[i+1])
			} else {
				b.edge(end, join)
			}
		}
	}
	if !hasDefault {
		b.edge(cur, join)
	}
	b.popSwitch(label)
	return join
}

func (b *cfgBuilder) selectStmt(st *ast.SelectStmt, cur *Block, label string) *Block {
	if len(st.Body.List) == 0 {
		// select{} blocks forever.
		cur.Term = st
		b.edge(cur, b.cfg.Exit)
		return nil
	}
	join := b.newBlock("select.join")
	b.pushSwitch(label, join)
	for _, c := range st.Body.List {
		cc := c.(*ast.CommClause)
		blk := b.newBlock("select.comm")
		b.edge(cur, blk)
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		if end := b.stmts(cc.Body, blk); end != nil {
			b.edge(end, join)
		}
	}
	b.popSwitch(label)
	return join
}

// --- loop/label bookkeeping ---------------------------------------------

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breakStack = append(b.breakStack, b.breakTo)
	b.contStack = append(b.contStack, b.continueTo)
	b.breakTo, b.continueTo = brk, cont
	if label != "" {
		b.labelBreak[label] = brk
		b.labelCont[label] = cont
	}
}

func (b *cfgBuilder) popLoop(label string) {
	b.breakTo = b.breakStack[len(b.breakStack)-1]
	b.continueTo = b.contStack[len(b.contStack)-1]
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.contStack = b.contStack[:len(b.contStack)-1]
	if label != "" {
		delete(b.labelBreak, label)
		delete(b.labelCont, label)
	}
}

// pushSwitch registers only a break target; continue passes through to the
// enclosing loop.
func (b *cfgBuilder) pushSwitch(label string, brk *Block) {
	b.breakStack = append(b.breakStack, b.breakTo)
	b.breakTo = brk
	if label != "" {
		b.labelBreak[label] = brk
	}
}

func (b *cfgBuilder) popSwitch(label string) {
	b.breakTo = b.breakStack[len(b.breakStack)-1]
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	if label != "" {
		delete(b.labelBreak, label)
	}
}

func (b *cfgBuilder) gotoBlock(label string) *Block {
	if blk, ok := b.gotoTarget[label]; ok {
		return blk
	}
	blk := b.newBlock("label." + label)
	b.gotoTarget[label] = blk
	return blk
}

// fallsThrough reports whether a case body ends in a fallthrough
// statement.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	t, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && t.Tok == token.FALLTHROUGH
}
