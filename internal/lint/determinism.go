package lint

import (
	"go/ast"
	"strings"
)

// DeterminismAnalyzer guards the replayable-simulation invariant: the
// predictor/corrector experiments (paper §6) and the fleet's seeded
// backoff are only comparable run-to-run if the simulated packages draw no
// wall-clock time and no global (process-seeded) randomness. Seeded
// *rand.Rand values threaded through APIs are fine; package-level
// math/rand functions and time.Now are not.
var DeterminismAnalyzer = &Analyzer{
	Name:       "determinism",
	Doc:        "flags wall-clock time and global math/rand use inside deterministic packages",
	DedupGroup: "walltime",
	Paths:      deterministicPaths,
	Run:        runDeterminism,
}

// deterministicPaths are the packages promised to draw no wall-clock time
// and no global randomness. The determinism analyzer checks their bodies
// directly; the walltime analyzer chases helper calls that launder a
// wall-clock read in from outside this set.
var deterministicPaths = []string{
	"internal/sim",
	"internal/predict",
	"internal/classifier",
	"internal/tcam",
	"internal/workload",
	"internal/faultinject",
	"internal/obs",
	"internal/loadgen",
	"internal/intent",
	"internal/rulecache",
}

// isDeterministicPath reports whether a package import path (module- or
// corpus-relative) falls inside the deterministic set.
func isDeterministicPath(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, suffix := range deterministicPaths {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	return false
}

// bannedTime are the wall-clock entry points; the virtual clock
// (time.Duration arithmetic) stays allowed.
var bannedTime = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// bannedRand are the package-level math/rand functions that draw from the
// shared, process-global source. Constructors for injectable generators
// (New, NewSource, NewZipf) are deliberately absent.
var bannedRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

func runDeterminism(p *Pass) {
	for _, file := range p.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch p.PkgNameOf(sel.X) {
			case "time":
				if bannedTime[sel.Sel.Name] {
					p.Reportf(sel.Pos(),
						"wall-clock time.%s in deterministic package; inject a virtual clock",
						sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if bannedRand[sel.Sel.Name] {
					p.Reportf(sel.Pos(),
						"global rand.%s in deterministic package; use a seeded *rand.Rand",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
}
