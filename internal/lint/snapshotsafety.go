package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SnapshotSafetyAnalyzer guards the immutability contract of the agent's
// lock-free read path (core/view.go): a snapshot published through an
// atomic.Pointer is frozen — every field is written before Store and
// never after, because concurrent readers hold the same pointer with no
// lock. A single post-publication write (`v.hits++` after `view.Load()`)
// is a data race that -race only catches if a reader happens to collide
// during the test run; this pass catches it structurally.
//
// The analysis is a forward may-taint dataflow over the function CFG:
// values become "published" when they come from atomic.Pointer.Load, from
// a function that returns a published value, or at the point they are
// handed to atomic.Pointer.Store (from then on readers may hold them).
// Violations are writes through a published value — direct field/index/
// pointer stores, delete() on a published map, and call sites that pass a
// published value to a function whose interprocedural summary says it
// writes that receiver or parameter.
var SnapshotSafetyAnalyzer = &Analyzer{
	Name: "snapshotsafety",
	Doc:  "flags writes to snapshot data published via atomic.Pointer",
	Paths: []string{
		"internal/core",
	},
	SkipTests: true,
	Run:       runSnapshotSafety,
}

// atomicPointerCall reports whether call invokes the named method on a
// sync/atomic.Pointer[T] receiver (possibly through an address-of).
func atomicPointerCall(pkg *Package, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}

// writeBase peels an lvalue chain (selectors, indexing, dereference) down
// to its base expression and counts the steps. One or more steps means
// the statement writes *through* the base rather than rebinding it.
func writeBase(e ast.Expr) (ast.Expr, int) {
	steps := 0
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
			steps++
		case *ast.IndexExpr:
			e = x.X
			steps++
		case *ast.StarExpr:
			e = x.X
			steps++
		default:
			return e, steps
		}
	}
}

// publishedReturners computes, once per Run, the functions that return a
// value derived from an atomic.Pointer.Load — their results are live
// snapshots, not private copies. Flow-insensitive within each function,
// fixpoint across the call graph (a function returning the result of a
// returner is itself a returner).
func publishedReturners(prog *Program) map[string]bool {
	return prog.Cached("snapshotsafety.returners", func() any {
		g := prog.CallGraph()
		returners := make(map[string]bool)
		for changed := true; changed; {
			changed = false
			for _, id := range g.order {
				if returners[id] {
					continue
				}
				if returnsPublished(g.Funcs[id], returners) {
					returners[id] = true
					changed = true
				}
			}
		}
		return returners
	}).(map[string]bool)
}

// returnsPublished reports whether fn has a return statement whose result
// carries a published value, tracking local aliases flow-insensitively.
func returnsPublished(fn *FuncNode, returners map[string]bool) bool {
	pkg := fn.Pkg
	tainted := make(map[*types.Var]bool)

	exprHit := func(e ast.Expr) bool {
		hit := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.Ident:
				if v, ok := pkg.Info.Uses[n].(*types.Var); ok && tainted[v] {
					hit = true
				}
			case *ast.CallExpr:
				if atomicPointerCall(pkg, n, "Load") {
					hit = true
					return false
				}
				if f := calleeOf(pkg, n); f != nil && returners[f.FullName()] {
					hit = true
					return false
				}
			}
			return !hit
		})
		return hit
	}

	// Propagate through local assignments until stable. Store(x) also
	// taints x: a function that publishes a value and then returns it
	// (the freshView shape) hands its caller a live snapshot.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if atomicPointerCall(pkg, st, "Store") && len(st.Args) == 1 {
					if id, ok := ast.Unparen(st.Args[0]).(*ast.Ident); ok {
						if v := localVar(pkg, id); v != nil && !tainted[v] {
							tainted[v] = true
							changed = true
						}
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					v := localVar(pkg, id)
					if v == nil || tainted[v] {
						continue
					}
					rhs := st.Rhs
					if len(st.Rhs) == len(st.Lhs) {
						rhs = st.Rhs[i : i+1]
					}
					for _, r := range rhs {
						if exprHit(r) {
							tainted[v] = true
							changed = true
							break
						}
					}
				}
			}
			return true
		})
	}

	found := false
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, res := range ret.Results {
				if exprHit(res) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// localVar resolves an identifier to the *types.Var it defines or uses.
func localVar(pkg *Package, id *ast.Ident) *types.Var {
	if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// snapWriteSummary records which reference-typed slots (receiver, params)
// a function writes through, directly or via its callees.
type snapWriteSummary struct {
	recv   bool
	params []bool
}

func (s *snapWriteSummary) any() bool {
	if s.recv {
		return true
	}
	for _, p := range s.params {
		if p {
			return true
		}
	}
	return false
}

// mutableRef reports whether writes through a value of this type are
// visible to other holders of the same value.
func mutableRef(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice:
		return true
	}
	return false
}

// snapWriters computes, once per Run, the interprocedural write summaries
// for every module function: does it mutate data reachable from its
// receiver or a parameter? Direct writes seed the summaries; a fixpoint
// propagates them through call sites (passing a slot, or a projection of
// it, into a writing position of a callee makes the caller a writer too).
func snapWriters(prog *Program) map[string]*snapWriteSummary {
	return prog.Cached("snapshotsafety.writers", func() any {
		g := prog.CallGraph()
		slots := make(map[string]map[*types.Var]int) // var → param index; -1 = receiver
		sums := make(map[string]*snapWriteSummary)
		for _, id := range g.order {
			fn := g.Funcs[id]
			m := make(map[*types.Var]int)
			if fn.Decl.Recv != nil && len(fn.Decl.Recv.List) > 0 {
				for _, name := range fn.Decl.Recv.List[0].Names {
					if v, ok := fn.Pkg.Info.Defs[name].(*types.Var); ok && mutableRef(v.Type()) {
						m[v] = -1
					}
				}
			}
			idx := 0
			if params := fn.Decl.Type.Params; params != nil {
				for _, field := range params.List {
					if len(field.Names) == 0 {
						idx++
						continue
					}
					for _, name := range field.Names {
						if v, ok := fn.Pkg.Info.Defs[name].(*types.Var); ok && mutableRef(v.Type()) {
							m[v] = idx
						}
						idx++
					}
				}
			}
			slots[id] = m
			sums[id] = &snapWriteSummary{params: make([]bool, idx)}
		}

		mark := func(id string, target ast.Expr, needSteps int) bool {
			base, steps := writeBase(target)
			if steps < needSteps {
				return false
			}
			bid, ok := base.(*ast.Ident)
			if !ok {
				return false
			}
			v := localVar(g.Funcs[id].Pkg, bid)
			if v == nil {
				return false
			}
			slot, ok := slots[id][v]
			if !ok {
				return false
			}
			sum := sums[id]
			if slot == -1 {
				if sum.recv {
					return false
				}
				sum.recv = true
				return true
			}
			if sum.params[slot] {
				return false
			}
			sum.params[slot] = true
			return true
		}

		// Direct writes through a slot.
		for _, id := range g.order {
			fn := g.Funcs[id]
			ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					if st.Tok == token.DEFINE {
						return true
					}
					for _, lhs := range st.Lhs {
						mark(id, lhs, 1)
					}
				case *ast.IncDecStmt:
					mark(id, st.X, 1)
				case *ast.CallExpr:
					if bid, ok := st.Fun.(*ast.Ident); ok && len(st.Args) > 0 {
						if _, b := fn.Pkg.Info.Uses[bid].(*types.Builtin); b && bid.Name == "delete" {
							mark(id, st.Args[0], 0)
						}
					}
				}
				return true
			})
		}

		// Propagate through call sites.
		for changed := true; changed; {
			changed = false
			for _, id := range g.order {
				fn := g.Funcs[id]
				for _, cs := range fn.Calls {
					if cs.Callee == "" || cs.Callee == id {
						continue
					}
					csum := sums[cs.Callee]
					if csum == nil {
						continue
					}
					if csum.recv {
						if sel, ok := ast.Unparen(cs.Call.Fun).(*ast.SelectorExpr); ok {
							if mark(id, sel.X, 0) {
								changed = true
							}
						}
					}
					for i, arg := range cs.Call.Args {
						if i < len(csum.params) && csum.params[i] {
							if mark(id, arg, 0) {
								changed = true
							}
						}
					}
				}
			}
		}
		return sums
	}).(map[string]*snapWriteSummary)
}

func runSnapshotSafety(p *Pass) {
	returners := publishedReturners(p.Prog)
	writers := snapWriters(p.Prog)
	for _, file := range p.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkSnapshotFlow(p, returners, writers, body)
			}
			return true
		})
	}
}

// snapTransfer is the taint transfer: assignments from published values
// taint the bound variables, reassignment from clean values clears them,
// Store publishes its argument, and ranging over a published container
// taints the iteration variables.
func snapTransfer(p *Pass, returners map[string]bool) Transfer[*types.Var] {
	pkg := p.Pkg
	return func(n ast.Node, in Set[*types.Var]) Set[*types.Var] {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v := localVar(pkg, id)
				if v == nil {
					continue
				}
				rhs := st.Rhs
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i : i+1]
				}
				tainted := false
				for _, r := range rhs {
					if exprPublishes(pkg, returners, in, r) {
						tainted = true
						break
					}
				}
				switch {
				case tainted:
					in.Add(v)
				case st.Tok == token.ASSIGN || st.Tok == token.DEFINE:
					in.Del(v)
				}
			}
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						v := localVar(pkg, name)
						if v == nil {
							continue
						}
						var rhs []ast.Expr
						if len(vs.Values) == len(vs.Names) {
							rhs = vs.Values[i : i+1]
						} else {
							rhs = vs.Values
						}
						for _, r := range rhs {
							if exprPublishes(pkg, returners, in, r) {
								in.Add(v)
								break
							}
						}
					}
				}
			}
		}
		// Store(x) publishes x: from here on readers may hold it.
		ast.Inspect(n, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if atomicPointerCall(pkg, call, "Store") && len(call.Args) == 1 {
				if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					if v := localVar(pkg, id); v != nil {
						in.Add(v)
					}
				}
			}
			return true
		})
		// Range over a published container aliases its elements.
		if rs, ok := n.(*ast.RangeStmt); ok {
			if exprPublishes(pkg, returners, in, rs.X) {
				for _, e := range []ast.Expr{rs.Key, rs.Value} {
					if id, ok := e.(*ast.Ident); ok && id != nil {
						if v := localVar(pkg, id); v != nil {
							in.Add(v)
						}
					}
				}
			}
		}
		return in
	}
}

// exprPublishes reports whether evaluating e can yield a published value:
// it mentions a tainted variable, calls atomic.Pointer.Load, or calls a
// published returner.
func exprPublishes(pkg *Package, returners map[string]bool, in Set[*types.Var], e ast.Expr) bool {
	if e == nil {
		return false
	}
	hit := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if v, ok := pkg.Info.Uses[n].(*types.Var); ok && in.Has(v) {
				hit = true
			}
		case *ast.CallExpr:
			if atomicPointerCall(pkg, n, "Load") {
				hit = true
				return false
			}
			if f := calleeOf(pkg, n); f != nil && returners[f.FullName()] {
				hit = true
				return false
			}
		}
		return !hit
	})
	return hit
}

// checkSnapshotFlow solves the taint dataflow over one function body and
// reports every write through a published value.
func checkSnapshotFlow(p *Pass, returners map[string]bool, writers map[string]*snapWriteSummary, body *ast.BlockStmt) {
	cfg := p.FuncCFG(body)
	transfer := snapTransfer(p, returners)
	res := Forward(cfg, MeetUnion, NewSet[*types.Var](), transfer)

	for _, b := range cfg.Blocks {
		if !b.Reachable() || res.In[b] == nil {
			continue
		}
		state := res.In[b].Clone()
		for _, n := range b.Nodes {
			reportSnapshotWrites(p, returners, writers, state, n)
			state = transfer(n, state)
		}
	}
}

// reportSnapshotWrites flags the violations visible in one CFG node given
// the taint state on entry to it.
func reportSnapshotWrites(p *Pass, returners map[string]bool, writers map[string]*snapWriteSummary, in Set[*types.Var], n ast.Node) {
	pkg := p.Pkg
	baseTainted := func(e ast.Expr) bool {
		base, _ := writeBase(e)
		return exprPublishes(pkg, returners, in, base)
	}

	switch st := n.(type) {
	case *ast.AssignStmt:
		if st.Tok != token.DEFINE {
			for _, lhs := range st.Lhs {
				if _, steps := writeBase(lhs); steps == 0 {
					continue
				}
				if baseTainted(lhs) {
					p.Reportf(lhs.Pos(),
						"write mutates a snapshot published via atomic.Pointer; snapshots are immutable after Store — build a fresh view and Store that instead")
				}
			}
		}
	case *ast.IncDecStmt:
		if _, steps := writeBase(st.X); steps > 0 && baseTainted(st.X) {
			p.Reportf(st.X.Pos(),
				"write mutates a snapshot published via atomic.Pointer; snapshots are immutable after Store — build a fresh view and Store that instead")
		}
	}

	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && len(call.Args) > 0 {
			if _, b := pkg.Info.Uses[id].(*types.Builtin); b && id.Name == "delete" {
				if baseTainted(call.Args[0]) {
					p.Reportf(call.Pos(),
						"delete mutates a map inside a published snapshot; rebuild the snapshot instead")
				}
				return true
			}
		}
		f := calleeOf(pkg, call)
		if f == nil {
			return true
		}
		sum := writers[f.FullName()]
		if sum == nil || !sum.any() {
			return true
		}
		if sum.recv {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && baseTainted(sel.X) {
				p.Reportf(call.Pos(),
					"%s writes through its receiver, but the receiver is a published snapshot; operate on a fresh copy",
					f.Name())
			}
		}
		for i, arg := range call.Args {
			if i < len(sum.params) && sum.params[i] && baseTainted(arg) {
				p.Reportf(call.Pos(),
					"call passes a published snapshot to %s, which writes that argument; pass a fresh copy",
					f.Name())
			}
		}
		return true
	})
}
