package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// NarrowingAnalyzer guards the wire-codec bounds invariant: every integer
// that lands in a uint16/uint8 wire field must be range-checked first.
// This is exactly the defect class behind the 64KiB frame-length wrap bug
// fixed in PR 1 (a frame of total length 1<<16 truncated to 0 on the
// wire). A conversion counts as checked when the enclosing function
// compares the converted expression against a bound (any comparison
// mentioning the same expression), when the operand is a constant that
// fits, or when a //lint:ignore narrowing comment vouches for it.
var NarrowingAnalyzer = &Analyzer{
	Name:      "narrowing",
	Doc:       "flags unchecked int→uint16/uint8 conversions in the wire codec",
	Paths:     []string{"internal/ofwire"},
	SkipTests: true,
	Run:       runNarrowing,
}

func runNarrowing(p *Pass) {
	for _, file := range p.Files() {
		// Walk function by function so guard detection stays local.
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkNarrowingFunc(p, body)
			}
			return true
		})
	}
}

func checkNarrowingFunc(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := p.Pkg.Info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		dst, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || (dst.Kind() != types.Uint16 && dst.Kind() != types.Uint8) {
			return true
		}
		arg := call.Args[0]
		argTV := p.Pkg.Info.Types[arg]
		if argTV.Value != nil {
			// Constant operand: flag only if it cannot be represented.
			if representable(argTV.Value, dst.Kind()) {
				return true
			}
			p.Reportf(call.Pos(), "constant %s overflows %s", argTV.Value, dst)
			return true
		}
		src, ok := argTV.Type.Underlying().(*types.Basic)
		if !ok || !narrows(src.Kind(), dst.Kind()) {
			return true
		}
		if guardedBefore(p, body, arg, call.Pos()) {
			return true
		}
		p.Reportf(call.Pos(),
			"unchecked narrowing conversion %s → %s; range-check the value first (64KiB-wrap bug class)",
			src, dst)
		return true
	})
}

// narrows reports whether a src kind can hold values a dst kind cannot.
func narrows(src, dst types.BasicKind) bool {
	wider := map[types.BasicKind]bool{
		types.Int: true, types.Int32: true, types.Int64: true,
		types.Uint: true, types.Uint32: true, types.Uint64: true,
		types.Uintptr: true,
	}
	if dst == types.Uint8 {
		wider[types.Int16] = true
		wider[types.Uint16] = true
	}
	return wider[src]
}

func representable(v constant.Value, dst types.BasicKind) bool {
	if v.Kind() != constant.Int {
		return false
	}
	i, ok := constant.Int64Val(v)
	if !ok {
		return false
	}
	switch dst {
	case types.Uint8:
		return i >= 0 && i <= 0xFF
	case types.Uint16:
		return i >= 0 && i <= 0xFFFF
	}
	return false
}

// guardedBefore reports whether the function body contains, before pos, a
// comparison mentioning the converted expression — the mechanical
// signature of a bounds check such as "if total >= MaxMessageLen".
func guardedBefore(p *Pass, body *ast.BlockStmt, arg ast.Expr, pos token.Pos) bool {
	want := types.ExprString(arg)
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || bin.Pos() >= pos {
			return true
		}
		switch bin.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			if types.ExprString(bin.X) == want || types.ExprString(bin.Y) == want {
				guarded = true
				return false
			}
		}
		return true
	})
	return guarded
}
