package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path; external test packages carry a "_test" suffix
	Name  string // package clause name
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	ignores map[string][]ignoreDirective
}

// Load parses and type-checks every package named by the patterns. A
// pattern is a directory or a "dir/..." tree; "./..." covers the module.
// Directories named "testdata" are skipped during tree walks unless the
// pattern root itself points into one (so the lint self-test corpus can be
// linted explicitly but never pollutes a whole-module run).
func Load(patterns []string) ([]*Package, *token.FileSet, error) {
	dirs, err := expandPatterns(patterns)
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	// The source importer type-checks dependencies (including the standard
	// library) from source, keeping the tool free of export-data and
	// network dependencies. Cgo preprocessing is impossible in that mode,
	// so force the pure-Go variants of std packages like net.
	build.Default.CgoEnabled = false
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	for _, dir := range dirs {
		loaded, err := loadDir(fset, imp, dir)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, loaded...)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, fset, nil
}

func expandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "/..."); ok {
			root = filepath.Clean(root)
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("lint: walking %s: %w", root, err)
			}
			continue
		}
		info, err := os.Stat(pat)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: %s is not a directory", pat)
		}
		add(pat)
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// loadDir parses one directory and type-checks each package clause found
// in it: the primary package together with its in-package test files, and
// any external "_test" package on its own.
func loadDir(fset *token.FileSet, imp types.Importer, dir string) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	byName := make(map[string][]*ast.File)
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		name := file.Name.Name
		if _, ok := byName[name]; !ok {
			names = append(names, name)
		}
		byName[name] = append(byName[name], file)
	}
	sort.Strings(names)

	basePath, err := importPathFor(dir)
	if err != nil {
		return nil, err
	}

	var pkgs []*Package
	for _, name := range names {
		files := byName[name]
		path := basePath
		if strings.HasSuffix(name, "_test") {
			path += "_test"
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		tpkg, _ := conf.Check(path, fset, files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("lint: type-checking %s: %w", path, typeErrs[0])
		}
		pkgs = append(pkgs, &Package{
			Path:    path,
			Name:    name,
			Dir:     dir,
			Files:   files,
			Types:   tpkg,
			Info:    info,
			ignores: parseIgnores(fset, files),
		})
	}
	return pkgs, nil
}

// importPathFor maps a directory to the import path analyzers match on.
// Directories under a "testdata/src" tree get the path relative to that
// tree, so corpus packages impersonate the real packages their analyzers
// guard; everything else is module path + module-relative directory.
func importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	slashed := filepath.ToSlash(abs)
	if i := strings.LastIndex(slashed, "/testdata/src/"); i >= 0 {
		return slashed[i+len("/testdata/src/"):], nil
	}

	modRoot, modPath, err := findModule(abs)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(modRoot, abs)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	if rel == "." {
		return modPath, nil
	}
	return modPath + "/" + filepath.ToSlash(rel), nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}
