package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path; external test packages carry a "_test" suffix
	Name  string // package clause name
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	ignores map[string][]ignoreDirective
}

// loader resolves imports for the whole Run and caches the result, so a
// module-internal package is type-checked once no matter how many loaded
// packages import it, and packages inside a testdata/src corpus can import
// each other (the interprocedural analyzers need cross-package corpus
// edges). Resolution order:
//
//  1. a testdata/src tree named by the patterns (corpus packages
//     impersonate real module paths, so the corpus shadows the module
//     when — and only when — the corpus is what's being linted),
//  2. the enclosing module (path relative to the go.mod root),
//  3. the compiler source importer (standard library).
//
// Import-variant type-checks exclude _test.go files, which keeps the
// dependency graph acyclic (Go guarantees that for non-test imports) and
// therefore deadlock-free under the per-path once guards that make the
// loader safe for the parallel load below.
type loader struct {
	fset          *token.FileSet
	base          types.Importer // source importer: stdlib and anything unresolved
	baseMu        sync.Mutex
	modRoot       string
	modPath       string
	testdataRoots []string

	impMu   sync.Mutex
	imports map[string]*importEntry
}

type importEntry struct {
	once sync.Once
	pkg  *types.Package
	err  error
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	dir := l.dirFor(path)
	if dir == "" {
		l.baseMu.Lock()
		defer l.baseMu.Unlock()
		return l.base.Import(path)
	}
	l.impMu.Lock()
	e, ok := l.imports[path]
	if !ok {
		e = &importEntry{}
		l.imports[path] = e
	}
	l.impMu.Unlock()
	e.once.Do(func() { e.pkg, e.err = l.checkImportVariant(path, dir) })
	return e.pkg, e.err
}

// dirFor maps an import path to a source directory, or "" when the path is
// outside both the corpus trees and the module.
func (l *loader) dirFor(path string) string {
	for _, root := range l.testdataRoots {
		if d := filepath.Join(root, filepath.FromSlash(path)); hasGoFiles(d) {
			return d
		}
	}
	if path == l.modPath {
		if hasGoFiles(l.modRoot) {
			return l.modRoot
		}
		return ""
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		if d := filepath.Join(l.modRoot, filepath.FromSlash(rest)); hasGoFiles(d) {
			return d
		}
	}
	return ""
}

// checkImportVariant parses and type-checks the non-test files of dir — the
// view an importing package sees.
func (l *loader) checkImportVariant(path, dir string) (*types.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, file)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files for import %q in %s", path, dir)
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(path, l.fset, files, nil)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking import %s: %w", path, typeErrs[0])
	}
	return pkg, nil
}

// Load parses and type-checks every package named by the patterns. A
// pattern is a directory or a "dir/..." tree; "./..." covers the module.
// Directories named "testdata" are skipped during tree walks unless the
// pattern root itself points into one (so the lint self-test corpus can be
// linted explicitly but never pollutes a whole-module run). Parsing and
// type-checking run in parallel across directories; shared dependencies
// are resolved once through the loader.
func Load(patterns []string) ([]*Package, *token.FileSet, error) {
	dirs, err := expandPatterns(patterns)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	if len(dirs) == 0 {
		return nil, fset, nil
	}

	// The source importer type-checks dependencies (including the standard
	// library) from source, keeping the tool free of export-data and
	// network dependencies. Cgo preprocessing is impossible in that mode,
	// so force the pure-Go variants of std packages like net.
	build.Default.CgoEnabled = false

	abs0, err := filepath.Abs(dirs[0])
	if err != nil {
		return nil, nil, fmt.Errorf("lint: %w", err)
	}
	modRoot, modPath, err := findModule(abs0)
	if err != nil {
		return nil, nil, err
	}
	l := &loader{
		fset:    fset,
		base:    importer.ForCompiler(fset, "source", nil),
		modRoot: modRoot,
		modPath: modPath,
		imports: make(map[string]*importEntry),
	}
	seenRoots := map[string]bool{}
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: %w", err)
		}
		slashed := filepath.ToSlash(abs)
		if i := strings.LastIndex(slashed, "/testdata/src/"); i >= 0 {
			root := filepath.FromSlash(slashed[:i+len("/testdata/src")])
			if !seenRoots[root] {
				seenRoots[root] = true
				l.testdataRoots = append(l.testdataRoots, root)
			}
		}
	}
	sort.Strings(l.testdataRoots)

	// Parse every directory in parallel (token.FileSet is synchronized),
	// then type-check in parallel; the loader serializes only the shared
	// dependency work.
	type dirResult struct {
		dir  string
		pkgs []*Package
		err  error
	}
	results := make([]dirResult, len(dirs))
	var wg sync.WaitGroup
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			pkgs, err := loadDir(fset, l, dir)
			results[i] = dirResult{dir: dir, pkgs: pkgs, err: err}
		}(i, dir)
	}
	wg.Wait()

	var pkgs []*Package
	for _, r := range results {
		if r.err != nil {
			return nil, nil, r.err
		}
		pkgs = append(pkgs, r.pkgs...)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, fset, nil
}

func expandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "/..."); ok {
			root = filepath.Clean(root)
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("lint: walking %s: %w", root, err)
			}
			continue
		}
		info, err := os.Stat(pat)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: %s is not a directory", pat)
		}
		add(pat)
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// loadDir parses one directory and type-checks each package clause found
// in it: the primary package together with its in-package test files, and
// any external "_test" package on its own.
func loadDir(fset *token.FileSet, imp types.Importer, dir string) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	byName := make(map[string][]*ast.File)
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		name := file.Name.Name
		if _, ok := byName[name]; !ok {
			names = append(names, name)
		}
		byName[name] = append(byName[name], file)
	}
	sort.Strings(names)

	basePath, err := importPathFor(dir)
	if err != nil {
		return nil, err
	}

	var pkgs []*Package
	for _, name := range names {
		files := byName[name]
		path := basePath
		if strings.HasSuffix(name, "_test") {
			path += "_test"
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		tpkg, _ := conf.Check(path, fset, files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("lint: type-checking %s: %w", path, typeErrs[0])
		}
		pkgs = append(pkgs, &Package{
			Path:    path,
			Name:    name,
			Dir:     dir,
			Files:   files,
			Types:   tpkg,
			Info:    info,
			ignores: parseIgnores(fset, files),
		})
	}
	return pkgs, nil
}

// importPathFor maps a directory to the import path analyzers match on.
// Directories under a "testdata/src" tree get the path relative to that
// tree, so corpus packages impersonate the real packages their analyzers
// guard; everything else is module path + module-relative directory.
func importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	slashed := filepath.ToSlash(abs)
	if i := strings.LastIndex(slashed, "/testdata/src/"); i >= 0 {
		return slashed[i+len("/testdata/src/"):], nil
	}

	modRoot, modPath, err := findModule(abs)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(modRoot, abs)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	if rel == "." {
		return modPath, nil
	}
	return modPath + "/" + filepath.ToSlash(rel), nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}
