package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockcheckAnalyzer guards the lock discipline around shared TCAM, client
// and telemetry state: a function that takes mu.Lock() must release it on
// every return path, either inline before the return or via defer. The
// check is a conservative structural walk — conditional branches merge by
// intersection, so only paths that definitely hold the lock are reported —
// with //lint:ignore lockcheck as the escape hatch for intentional
// lock-handoff patterns.
var LockcheckAnalyzer = &Analyzer{
	Name: "lockcheck",
	Doc:  "flags return paths that leave a mutex locked",
	Paths: []string{
		"internal/fleet",
		"internal/ofwire",
		"internal/core",
	},
	Run: runLockcheck,
}

// lockKey identifies one held lock: the receiver expression plus whether
// it is the read half of an RWMutex.
type lockKey struct {
	recv string
	read bool
}

func (k lockKey) String() string {
	if k.read {
		return k.recv + " (read-locked)"
	}
	return k.recv
}

type lockState map[lockKey]token.Pos

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// intersect keeps only keys locked in every fall-through branch.
func intersect(states []lockState) lockState {
	if len(states) == 0 {
		return lockState{}
	}
	out := lockState{}
	for k, pos := range states[0] {
		in := true
		for _, other := range states[1:] {
			if _, ok := other[k]; !ok {
				in = false
				break
			}
		}
		if in {
			out[k] = pos
		}
	}
	return out
}

func runLockcheck(p *Pass) {
	for _, file := range p.Files() {
		// Every function body — declarations and literals — is analyzed
		// independently with an empty lock state.
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			w := &lockWalker{pass: p}
			state := lockState{}
			terminated := w.walkStmts(body.List, state)
			if !terminated {
				for k := range state {
					p.Reportf(body.Rbrace, "function ends with %s still held", k)
				}
			}
			return true
		})
	}
}

type lockWalker struct {
	pass *Pass
}

// lockCall decodes m.Lock()/m.Unlock()/m.RLock()/m.RUnlock() calls.
func lockCall(e ast.Expr) (key lockKey, acquire, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return lockKey{}, false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return lockKey{}, false, false
	}
	recv := types.ExprString(sel.X)
	switch sel.Sel.Name {
	case "Lock":
		return lockKey{recv: recv}, true, true
	case "Unlock":
		return lockKey{recv: recv}, false, true
	case "RLock":
		return lockKey{recv: recv, read: true}, true, true
	case "RUnlock":
		return lockKey{recv: recv, read: true}, false, true
	}
	return lockKey{}, false, false
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// walkStmts interprets a statement list, mutating state; it reports
// whether control definitely leaves the list (return/branch/panic).
func (w *lockWalker) walkStmts(stmts []ast.Stmt, state lockState) bool {
	for _, s := range stmts {
		if w.walkStmt(s, state) {
			return true
		}
	}
	return false
}

func (w *lockWalker) walkStmt(s ast.Stmt, state lockState) bool {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if key, acquire, ok := lockCall(st.X); ok {
			if acquire {
				state[key] = st.X.Pos()
			} else {
				delete(state, key)
			}
			return false
		}
		return isPanicCall(st.X)

	case *ast.DeferStmt:
		// defer mu.Unlock() releases on every path from here on; so does
		// an unlock buried in a deferred closure.
		if key, acquire, ok := lockCall(st.Call); ok && !acquire {
			delete(state, key)
			return false
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if e, ok := n.(*ast.ExprStmt); ok {
					if key, acquire, ok := lockCall(e.X); ok && !acquire {
						delete(state, key)
					}
				}
				return true
			})
		}
		return false

	case *ast.ReturnStmt:
		for k, pos := range state {
			_ = pos
			w.pass.Reportf(st.Pos(), "return with %s still held; unlock before returning or use defer", k)
		}
		return true

	case *ast.BranchStmt:
		return true

	case *ast.BlockStmt:
		return w.walkStmts(st.List, state)

	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, state)

	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, state)
		}
		thenState := state.clone()
		thenTerm := w.walkStmts(st.Body.List, thenState)
		elseState := state.clone()
		elseTerm := false
		if st.Else != nil {
			elseTerm = w.walkStmt(st.Else, elseState)
		}
		var fallthroughs []lockState
		if !thenTerm {
			fallthroughs = append(fallthroughs, thenState)
		}
		if !elseTerm {
			fallthroughs = append(fallthroughs, elseState)
		}
		if len(fallthroughs) == 0 {
			return true
		}
		replace(state, intersect(fallthroughs))
		return false

	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, state)
		}
		w.walkStmts(st.Body.List, state.clone())
		return false

	case *ast.RangeStmt:
		w.walkStmts(st.Body.List, state.clone())
		return false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkCases(s, state)

	default:
		return false
	}
}

// walkCases handles switch/type-switch/select uniformly: each clause runs
// on a copy of the entry state; fall-through is the intersection of the
// clauses that do not terminate (plus the entry state when a switch has no
// default, since it may match nothing).
func (w *lockWalker) walkCases(s ast.Stmt, state lockState) bool {
	var clauses []ast.Stmt
	hasDefault := false
	switch st := s.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, state)
		}
		clauses = st.Body.List
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, state)
		}
		clauses = st.Body.List
	case *ast.SelectStmt:
		clauses = st.Body.List
	}
	var fallthroughs []lockState
	for _, c := range clauses {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			body = cc.Body
		case *ast.CommClause:
			body = cc.Body
		}
		cs := state.clone()
		if !w.walkStmts(body, cs) {
			fallthroughs = append(fallthroughs, cs)
		}
	}
	if _, isSelect := s.(*ast.SelectStmt); !isSelect && !hasDefault {
		fallthroughs = append(fallthroughs, state.clone())
	}
	if len(fallthroughs) == 0 {
		return len(clauses) > 0
	}
	replace(state, intersect(fallthroughs))
	return false
}

func replace(dst, src lockState) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}
