package lint

import (
	"go/ast"
	"go/types"
)

// LockcheckAnalyzer guards the lock discipline around shared TCAM, client
// and telemetry state: a function that takes mu.Lock() must release it on
// every return path, either inline before the return or via defer. It is
// the canonical hermes-vet must-analysis: a forward dataflow over the
// function CFG with intersection at merges, so only locks held on *every*
// path into a return are reported (no false positives from branches that
// already released), with //lint:ignore lockcheck as the escape hatch for
// intentional lock-handoff patterns.
var LockcheckAnalyzer = &Analyzer{
	Name:       "lockcheck",
	Doc:        "flags return paths that leave a mutex locked",
	DedupGroup: "lock",
	Paths: []string{
		"internal/fleet",
		"internal/ofwire",
		"internal/core",
	},
	Run: runLockcheck,
}

// lockKey identifies one held lock: the receiver expression plus whether
// it is the read half of an RWMutex.
type lockKey struct {
	recv string
	read bool
}

func (k lockKey) String() string {
	if k.read {
		return k.recv + " (read-locked)"
	}
	return k.recv
}

func runLockcheck(p *Pass) {
	for _, file := range p.Files() {
		// Every function body — declarations and literals — is analyzed
		// independently with an empty lock state.
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkLockFlow(p, body)
			}
			return true
		})
	}
}

// lockTransfer is the dataflow transfer function: Lock/RLock generate the
// held fact, Unlock/RUnlock (inline, deferred, or inside a deferred
// closure) kill it. Nested function literals are opaque — they run on
// their own schedule and are analyzed as their own functions.
func lockTransfer(n ast.Node, in Set[lockKey]) Set[lockKey] {
	switch st := n.(type) {
	case *ast.ExprStmt:
		if key, acquire, ok := lockCall(st.X); ok {
			if acquire {
				in.Add(key)
			} else {
				in.Del(key)
			}
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() releases on every path from here on; so does
		// an unlock buried in a deferred closure.
		if key, acquire, ok := lockCall(st.Call); ok && !acquire {
			in.Del(key)
			return in
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(inner ast.Node) bool {
				if e, ok := inner.(*ast.ExprStmt); ok {
					if key, acquire, ok := lockCall(e.X); ok && !acquire {
						in.Del(key)
					}
				}
				return true
			})
		}
	}
	return in
}

// checkLockFlow solves must-held-locks over the body's CFG and reports
// returns (and the function end) reached with a lock still held. Paths
// that leave via panic are exempt: the deferred unlocks of callers, and
// the test harness, own that case.
func checkLockFlow(p *Pass, body *ast.BlockStmt) {
	cfg := p.FuncCFG(body)
	res := Forward(cfg, MeetIntersect, NewSet[lockKey](), lockTransfer)

	for _, b := range cfg.Blocks {
		if !b.Reachable() || res.In[b] == nil {
			continue
		}
		state := res.In[b].Clone()
		for _, n := range b.Nodes {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				for k := range state {
					p.Reportf(ret.Pos(),
						"return with %s still held; unlock before returning or use defer", k)
				}
			}
			state = lockTransfer(n, state)
		}
	}

	// Fall-off-the-end: the exit block's fall-through predecessors.
	held := NewSet[lockKey]()
	for _, pred := range cfg.Exit.Preds {
		if pred.Term != nil || res.Out[pred] == nil {
			continue
		}
		for k := range res.Out[pred] {
			held.Add(k)
		}
	}
	for k := range held {
		p.Reportf(body.Rbrace, "function ends with %s still held", k)
	}
}

// heldNowTransfer tracks locks held *at this instant*, for analyses that
// care about the critical section itself rather than leak-at-return:
// unlike lockTransfer, a deferred Unlock does not release here — the lock
// stays held until the function actually returns.
func heldNowTransfer(n ast.Node, in Set[lockKey]) Set[lockKey] {
	if st, ok := n.(*ast.ExprStmt); ok {
		if key, acquire, ok := lockCall(st.X); ok {
			if acquire {
				in.Add(key)
			} else {
				in.Del(key)
			}
		}
	}
	return in
}

// mustHeldAt computes, for one function body, the set of locks definitely
// held immediately before each CFG node — shared with the chanblock
// analyzer, which flags potentially blocking channel operations inside
// critical sections. Deferred unlocks do not clear the state: the
// critical section extends to the return.
func mustHeldAt(p *Pass, body *ast.BlockStmt) map[ast.Node]Set[lockKey] {
	cfg := p.FuncCFG(body)
	res := Forward(cfg, MeetIntersect, NewSet[lockKey](), heldNowTransfer)
	out := make(map[ast.Node]Set[lockKey])
	for _, b := range cfg.Blocks {
		if !b.Reachable() || res.In[b] == nil {
			continue
		}
		state := res.In[b].Clone()
		for _, n := range b.Nodes {
			out[n] = state.Clone()
			state = heldNowTransfer(n, state)
		}
	}
	return out
}

// lockCall decodes m.Lock()/m.Unlock()/m.RLock()/m.RUnlock() calls.
func lockCall(e ast.Expr) (key lockKey, acquire, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return lockKey{}, false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return lockKey{}, false, false
	}
	recv := types.ExprString(sel.X)
	switch sel.Sel.Name {
	case "Lock":
		return lockKey{recv: recv}, true, true
	case "Unlock":
		return lockKey{recv: recv}, false, true
	case "RLock":
		return lockKey{recv: recv, read: true}, true, true
	case "RUnlock":
		return lockKey{recv: recv, read: true}, false, true
	}
	return lockKey{}, false, false
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
