package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// ChanBlockAnalyzer flags blocking channel operations inside critical
// sections: a send or receive on an *unbuffered* channel performed while
// a mutex is held parks the goroutine until a partner arrives — and if
// that partner needs the same lock (the common shape in the fleet's
// connection teardown and the ofwire reader/writer pairs), the program
// deadlocks. Buffered channels are exempt (a send can complete without a
// partner), as are comms inside a select that has a default clause (the
// operation cannot block).
//
// It composes two analyses this package already has: the lockcheck
// must-held dataflow (which locks are definitely held before each CFG
// node) and a package-wide channel census (which channel variables and
// fields are only ever assigned unbuffered makes).
var ChanBlockAnalyzer = &Analyzer{
	Name: "chanblock",
	Doc:  "flags sends/receives on unbuffered channels while a mutex is held",
	Paths: []string{
		"internal/fleet",
		"internal/ofwire",
		"internal/core",
	},
	SkipTests: true,
	Run:       runChanBlock,
}

// chanMake classifies a make(chan ...) expression: whether it makes a
// channel at all, and whether that channel is unbuffered (no capacity
// argument, or a constant zero).
func chanMake(pkg *Package, e ast.Expr) (isChan, unbuffered bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return false, false
	}
	if _, b := pkg.Info.Uses[id].(*types.Builtin); !b {
		return false, false
	}
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false, false
	}
	if _, ok := tv.Type.Underlying().(*types.Chan); !ok {
		return false, false
	}
	if len(call.Args) < 2 {
		return true, true
	}
	if capv, ok := pkg.Info.Types[call.Args[1]]; ok && capv.Value != nil {
		if v, exact := constant.Int64Val(capv.Value); exact && v == 0 {
			return true, true
		}
	}
	return true, false
}

// unbufferedChans walks every file of the package (tests included — an
// assignment anywhere can rebind a channel) and returns the channel
// variables and struct fields that are assigned unbuffered makes and
// nothing else. A single assignment from any other expression
// disqualifies the object: it might alias a buffered channel.
func unbufferedChans(p *Pass) map[*types.Var]bool {
	made := make(map[*types.Var]bool)
	disqualified := make(map[*types.Var]bool)

	chanVarOf := func(e ast.Expr) *types.Var {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v := localVar(p.Pkg, x); v != nil {
				if _, ok := v.Type().Underlying().(*types.Chan); ok {
					return v
				}
			}
		case *ast.SelectorExpr:
			if v, ok := p.Pkg.Info.Uses[x.Sel].(*types.Var); ok {
				if _, chOk := v.Type().Underlying().(*types.Chan); chOk {
					return v
				}
			}
		}
		return nil
	}

	record := func(lhs, rhs ast.Expr) {
		v := chanVarOf(lhs)
		if v == nil {
			return
		}
		if rhs == nil {
			// var c chan T — nil channel; blocks forever, but that is a
			// different bug class. Treat as disqualifying nothing.
			return
		}
		if isChan, unbuf := chanMake(p.Pkg, rhs); isChan && unbuf {
			made[v] = true
		} else {
			disqualified[v] = true
		}
	}

	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					if len(st.Rhs) == len(st.Lhs) {
						record(lhs, st.Rhs[i])
					} else if chanVarOf(lhs) != nil {
						// Multi-value assignment: origin unknown.
						disqualified[chanVarOf(lhs)] = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range st.Names {
					if len(st.Values) == len(st.Names) {
						record(name, st.Values[i])
					} else if len(st.Values) > 0 && chanVarOf(name) != nil {
						disqualified[chanVarOf(name)] = true
					}
				}
			case *ast.KeyValueExpr:
				if key, ok := st.Key.(*ast.Ident); ok {
					if v, ok := p.Pkg.Info.Uses[key].(*types.Var); ok {
						if _, chOk := v.Type().Underlying().(*types.Chan); chOk {
							if isChan, unbuf := chanMake(p.Pkg, st.Value); isChan && unbuf {
								made[v] = true
							} else {
								disqualified[v] = true
							}
						}
					}
				}
			}
			return true
		})
	}

	out := make(map[*types.Var]bool, len(made))
	for v := range made {
		if !disqualified[v] {
			out[v] = true
		}
	}
	return out
}

// chanOperand resolves the channel expression of a send/receive to its
// variable or field, if it names one directly.
func chanOperand(p *Pass, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return localVar(p.Pkg, x)
	case *ast.SelectorExpr:
		if v, ok := p.Pkg.Info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// nonBlockingComms collects the comm statements of every select that has
// a default clause — those operations cannot block.
func nonBlockingComms(body *ast.BlockStmt) map[ast.Node]bool {
	out := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				out[cc.Comm] = true
			}
		}
		return true
	})
	return out
}

func runChanBlock(p *Pass) {
	unbuffered := unbufferedChans(p)
	if len(unbuffered) == 0 {
		return
	}
	for _, file := range p.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkChanBlock(p, unbuffered, body)
			}
			return true
		})
	}
}

func checkChanBlock(p *Pass, unbuffered map[*types.Var]bool, body *ast.BlockStmt) {
	held := mustHeldAt(p, body)
	exempt := nonBlockingComms(body)
	for node, locks := range held {
		if len(locks) == 0 || exempt[node] {
			continue
		}
		ast.Inspect(node, func(x ast.Node) bool {
			switch op := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SendStmt:
				if exempt[op] {
					return true
				}
				if v := chanOperand(p, op.Chan); v != nil && unbuffered[v] {
					p.Reportf(op.Pos(),
						"send on unbuffered channel %s while %s is held; a partner needing the lock deadlocks — buffer the channel or move the send outside the critical section",
						v.Name(), firstLock(locks))
				}
			case *ast.UnaryExpr:
				if op.Op != token.ARROW {
					return true
				}
				if v := chanOperand(p, op.X); v != nil && unbuffered[v] {
					p.Reportf(op.Pos(),
						"receive on unbuffered channel %s while %s is held; a partner needing the lock deadlocks — buffer the channel or move the receive outside the critical section",
						v.Name(), firstLock(locks))
				}
			}
			return true
		})
	}
}

// firstLock renders one held lock deterministically (the set is tiny; the
// lexicographically first key keeps messages stable).
func firstLock(locks Set[lockKey]) string {
	best := ""
	for k := range locks {
		if s := k.String(); best == "" || s < best {
			best = s
		}
	}
	return best
}
