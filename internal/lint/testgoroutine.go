package lint

import (
	"go/ast"
	"go/types"
)

// TestGoroutineAnalyzer guards test-goroutine hygiene: t.Fatal/t.FailNow
// must only run on the test goroutine (calling them elsewhere exits the
// goroutine without stopping the test — the testing package documents the
// hang), and this project also bans t.Error* from spawned goroutines so
// worker results always funnel through channels and get joined before the
// test returns, keeping the race detector and the goroutine-leak checker
// meaningful.
var TestGoroutineAnalyzer = &Analyzer{
	Name:      "testgoroutine",
	Doc:       "flags t.Fatal*/t.Error* inside goroutines spawned by tests",
	TestsOnly: true,
	Run:       runTestGoroutine,
}

var bannedTestCalls = map[string]bool{
	"Fatal": true, "Fatalf": true, "FailNow": true,
	"Error": true, "Errorf": true,
	"Skip": true, "Skipf": true, "SkipNow": true,
}

func runTestGoroutine(p *Pass) {
	for _, file := range p.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			gostmt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gostmt.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(inner ast.Node) bool {
				call, ok := inner.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !bannedTestCalls[sel.Sel.Name] {
					return true
				}
				if !isTestingValue(p, sel.X) {
					return true
				}
				p.Reportf(call.Pos(),
					"%s.%s inside a goroutine spawned by the test; send the error over a channel and report it from the test goroutine",
					types.ExprString(sel.X), sel.Sel.Name)
				return true
			})
			return true
		})
	}
}

// isTestingValue reports whether the expression is a *testing.T,
// *testing.B, *testing.F or testing.TB.
func isTestingValue(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	switch t.String() {
	case "*testing.T", "*testing.B", "*testing.F", "testing.TB":
		return true
	}
	return false
}
