package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
)

// SARIF 2.1.0 output, the interchange format GitHub code scanning
// ingests. Only the slice of the spec the upload path requires is
// modeled; rules carry the analyzer docs so findings get hover text in
// the code-scanning UI. Paths are emitted repo-relative (forward
// slashes) so the same SARIF file is valid from any checkout location.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders findings as a single-run SARIF 2.1.0 log. root is
// the directory file paths are made relative to (usually the repo root);
// paths outside it pass through unchanged. Rules are listed for every
// analyzer in the suite, findings or not, and both rules and results are
// emitted in deterministic order (analyzer name; findings keep their
// position sort from Run).
func WriteSARIF(w io.Writer, analyzers []*Analyzer, findings []Finding, root string) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		level := "error"
		if f.Severity == SeverityWarning {
			level = "warning"
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   level,
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: sarifURI(root, f.File)},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "hermes-vet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifURI converts an absolute finding path to a root-relative,
// slash-separated URI; paths that do not sit under root stay as given
// (slash-converted).
func sarifURI(root, file string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && rel != "" && !filepath.IsAbs(rel) &&
			rel != ".." && !hasDotDotPrefix(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
