package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSARIFOutput keeps the code-scanning upload format stable: version
// pinned, driver named, severities mapped, and paths repo-relative with
// forward slashes.
func TestSARIFOutput(t *testing.T) {
	var buf bytes.Buffer
	findings := []Finding{
		{Analyzer: "lockcheck", Severity: SeverityError, File: "/repo/internal/fleet/worker.go", Line: 10, Col: 2, Message: "held"},
		{Analyzer: "allocscan", Severity: SeverityWarning, File: "/elsewhere/x.go", Line: 3, Col: 1, Message: "allocates"},
	}
	if err := WriteSARIF(&buf, Analyzers(), findings, "/repo"); err != nil {
		t.Fatal(err)
	}

	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "hermes-vet" {
		t.Errorf("driver name = %q, want hermes-vet", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(Analyzers()) {
		t.Errorf("rules = %d, want one per analyzer (%d)", len(run.Tool.Driver.Rules), len(Analyzers()))
	}
	for i := 1; i < len(run.Tool.Driver.Rules); i++ {
		if run.Tool.Driver.Rules[i-1].ID >= run.Tool.Driver.Rules[i].ID {
			t.Errorf("rules out of order: %q before %q", run.Tool.Driver.Rules[i-1].ID, run.Tool.Driver.Rules[i].ID)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	if got := run.Results[0]; got.Level != "error" ||
		got.Locations[0].PhysicalLocation.ArtifactLocation.URI != "internal/fleet/worker.go" {
		t.Errorf("first result level/uri = %q/%q, want error/internal/fleet/worker.go",
			got.Level, got.Locations[0].PhysicalLocation.ArtifactLocation.URI)
	}
	if got := run.Results[1]; got.Level != "warning" ||
		!strings.HasPrefix(got.Locations[0].PhysicalLocation.ArtifactLocation.URI, "/elsewhere/") {
		t.Errorf("out-of-root path must pass through; got %q", got.Locations[0].PhysicalLocation.ArtifactLocation.URI)
	}
	if reg := run.Results[0].Locations[0].PhysicalLocation.Region; reg.StartLine != 10 || reg.StartColumn != 2 {
		t.Errorf("region = %+v, want 10:2", reg)
	}
}
