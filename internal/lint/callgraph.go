package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the module-wide call graph the interprocedural
// hermes-vet analyzers (hotpathalloc, walltime, snapshotsafety) traverse.
// Resolution is the classic static approximation: direct function calls
// and method calls on concrete receivers resolve to their declarations;
// calls through interfaces, function values, and into packages outside the
// loaded set stay unresolved (no edge). That under-approximates dynamic
// dispatch — acceptable for invariant enforcement because the hot paths it
// guards are deliberately monomorphic — and never invents spurious edges.
//
// Nodes are keyed by types.Func.FullName (e.g.
// "(*hermes/internal/classifier.RuleIndex).Lookup"), which is stable
// across independently type-checked packages, so edges connect across
// package boundaries even though each *Package carries its own types
// universe.

// FuncNode is one declared function or method in the loaded packages.
type FuncNode struct {
	ID   string // types.Func.FullName
	Name string // bare declared name
	Pkg  *Package
	Decl *ast.FuncDecl
	// Calls are the call sites lexically inside the declaration,
	// including those in nested function literals (a literal is assumed
	// to run on behalf of its enclosing function — conservative in the
	// right direction for budget propagation).
	Calls []CallSite
}

// CallSite is one call expression and its resolved callee, if any.
type CallSite struct {
	Call   *ast.CallExpr
	Callee string // FuncNode ID, or "" when unresolved
}

// CallGraph is the interprocedural call structure of the loaded module.
type CallGraph struct {
	Funcs map[string]*FuncNode
	// order holds IDs sorted for deterministic iteration.
	order []string
}

// BuildCallGraph walks every loaded package once.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Funcs: make(map[string]*FuncNode)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{ID: obj.FullName(), Name: fn.Name.Name, Pkg: pkg, Decl: fn}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := calleeOf(pkg, call)
					id := ""
					if callee != nil {
						id = callee.FullName()
					}
					node.Calls = append(node.Calls, CallSite{Call: call, Callee: id})
					return true
				})
				g.Funcs[node.ID] = node
			}
		}
	}
	g.order = make([]string, 0, len(g.Funcs))
	for id := range g.Funcs {
		g.order = append(g.order, id)
	}
	sort.Strings(g.order)
	return g
}

// calleeOf resolves a call expression to the *types.Func it statically
// invokes, or nil (builtin, conversion, function value, interface method
// with no static target).
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				if isInterface(sel.Recv()) {
					return nil // dynamic dispatch: no static callee
				}
				return f
			}
			return nil
		}
		// Package-qualified call: pkg.F(...).
		if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// Node returns the declaration node for an ID, or nil for functions
// outside the loaded set (stdlib, unexported dependencies).
func (g *CallGraph) Node(id string) *FuncNode { return g.Funcs[id] }

// ReachInfo explains why a function carries a transitive property: either
// it exhibits it directly at Pos, or a call at Pos reaches Via, which
// does.
type ReachInfo struct {
	Direct bool
	Pos    token.Pos
	Via    string
}

// Reaches computes the transitive closure of a per-function property over
// the call graph: a function has the property if direct() reports it, or
// if any resolved call site's callee has it. The returned map holds a
// witness per affected function, so analyzers can print the chain that
// carries a violation into a guarded root. Iterates to a fixed point;
// deterministic because functions and call sites are visited in sorted
// declaration order.
func (g *CallGraph) Reaches(direct func(*FuncNode) (token.Pos, bool)) map[string]*ReachInfo {
	out := make(map[string]*ReachInfo)
	for _, id := range g.order {
		if pos, ok := direct(g.Funcs[id]); ok {
			out[id] = &ReachInfo{Direct: true, Pos: pos}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, id := range g.order {
			if _, done := out[id]; done {
				continue
			}
			node := g.Funcs[id]
			for _, cs := range node.Calls {
				if cs.Callee == "" || cs.Callee == id {
					continue
				}
				if _, hit := out[cs.Callee]; hit {
					out[id] = &ReachInfo{Pos: cs.Call.Pos(), Via: cs.Callee}
					changed = true
					break
				}
			}
		}
	}
	return out
}

// Chain renders the witness path from id down to the direct occurrence,
// e.g. ["freshView", "NewRuleIndex"]. Cycles cannot occur because Reaches
// only records acyclic witnesses.
func (g *CallGraph) Chain(reach map[string]*ReachInfo, id string) []string {
	var chain []string
	for cur := id; ; {
		info := reach[cur]
		if info == nil {
			return chain
		}
		if info.Direct {
			return chain
		}
		chain = append(chain, shortFuncID(info.Via))
		cur = info.Via
		if len(chain) > 16 {
			return chain
		}
	}
}

// shortFuncID compresses a FullName to "Type.Method" or "pkg.Func" for
// diagnostics.
func shortFuncID(id string) string {
	// "(*hermes/internal/classifier.RuleIndex).Lookup" → "RuleIndex.Lookup"
	// "hermes/internal/classifier.NewRuleIndex"        → "classifier.NewRuleIndex"
	s := id
	if len(s) > 0 && s[0] == '(' {
		if i := lastIndexByte(s, ')'); i > 0 {
			recv := s[1:i]
			rest := s[i+1:] // ".Lookup"
			for len(recv) > 0 && recv[0] == '*' {
				recv = recv[1:]
			}
			if j := lastIndexByte(recv, '.'); j >= 0 {
				recv = recv[j+1:]
			}
			return recv + rest
		}
	}
	if i := lastIndexByte(s, '/'); i >= 0 {
		return s[i+1:]
	}
	return s
}

func lastIndexByte(s string, b byte) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == b {
			return i
		}
	}
	return -1
}
