// Package lint implements hermes-vet: project-specific static analysis
// enforcing invariants the Go compiler cannot see but Hermes's guarantees
// depend on — deterministic simulation, wire-codec bounds safety, lock
// discipline around shared switch state, error-chain preservation,
// test-goroutine hygiene, and the concurrency/hot-path contracts of the
// lock-free agent read path (DESIGN.md §8, §13).
//
// The package is stdlib-only (go/parser, go/ast, go/types and the source
// importer); it loads packages straight from the tree so it works offline
// with zero module downloads, exactly like the rest of the module.
//
// Architecturally it is a small analysis engine rather than a bag of AST
// walks: packages load in parallel into a Program, which lazily builds
// per-function control-flow graphs (cfg.go), a module-wide call graph
// (callgraph.go) and shared interprocedural summaries (memoized via
// Program.Cached), and analyzers run concurrently against a Pass that
// exposes all of it. Findings carry severities, are stably sorted, deduped
// across analyzer families, and render as text, JSON, or SARIF.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
	"sync"
)

// Severity classifies a finding for reporting backends (SARIF levels, CI
// annotation styling). Every severity fails the lint gate; the distinction
// is informational.
type Severity string

const (
	SeverityError   Severity = "error"
	SeverityWarning Severity = "warning"
)

// Finding is one analyzer hit, addressable as file:line:col.
type Finding struct {
	Analyzer string   `json:"analyzer"`
	Severity Severity `json:"severity"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Message  string   `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// Analyzer is one independently testable check.
type Analyzer struct {
	Name string
	Doc  string

	// Severity defaults to SeverityError when empty.
	Severity Severity

	// DedupGroup names a family of analyzers that report the same root
	// cause at the same position (e.g. allocscan and its interprocedural
	// upgrade hotpathalloc). When two findings from one group land on the
	// same file:line:col, only the first in analyzer-name order survives.
	DedupGroup string

	// Paths restricts the analyzer to packages whose import path (with
	// any external-test "_test" suffix stripped) ends in one of these
	// suffixes. Empty means every package.
	Paths []string
	// SkipTests excludes _test.go files; TestsOnly includes nothing else.
	SkipTests bool
	TestsOnly bool
	// SkipMain excludes package main (commands and examples are not
	// library code).
	SkipMain bool

	Run func(*Pass)
}

// Program is the shared analysis state for one Run: every loaded package
// plus lazily built, memoized cross-cutting structures. All methods are
// safe for concurrent use by analyzers running in parallel.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	// analyzerNames is the suite under execution, for directive
	// validation.
	analyzerNames map[string]bool

	cgOnce sync.Once
	cg     *CallGraph

	mu    sync.Mutex
	cfgs  map[*ast.BlockStmt]*CFG
	cache map[string]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	val  any
}

// CallGraph returns the module-wide call graph, built on first use.
func (prog *Program) CallGraph() *CallGraph {
	prog.cgOnce.Do(func() { prog.cg = BuildCallGraph(prog.Pkgs) })
	return prog.cg
}

// FuncCFG returns the (cached) control-flow graph for a function body.
func (prog *Program) FuncCFG(body *ast.BlockStmt) *CFG {
	prog.mu.Lock()
	c, ok := prog.cfgs[body]
	prog.mu.Unlock()
	if ok {
		return c
	}
	c = BuildCFG(body)
	prog.mu.Lock()
	prog.cfgs[body] = c
	prog.mu.Unlock()
	return c
}

// Cached memoizes an expensive program-wide computation (interprocedural
// summaries) under a key, running build exactly once across all analyzer
// goroutines.
func (prog *Program) Cached(key string, build func() any) any {
	prog.mu.Lock()
	e, ok := prog.cache[key]
	if !ok {
		e = &cacheEntry{}
		prog.cache[key] = e
	}
	prog.mu.Unlock()
	e.once.Do(func() { e.val = build() })
	return e.val
}

// KnownAnalyzer reports whether name belongs to the suite under execution
// (used by the lintdirective analyzer to validate //lint:ignore targets).
func (prog *Program) KnownAnalyzer(name string) bool {
	return name == "all" || prog.analyzerNames[name]
}

// Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	Prog     *Program

	findings []Finding
}

// Files returns the package files this analyzer should inspect, honoring
// the analyzer's test-file filters.
func (p *Pass) Files() []*ast.File {
	var out []*ast.File
	for _, f := range p.Pkg.Files {
		test := strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
		if (test && p.Analyzer.SkipTests) || (!test && p.Analyzer.TestsOnly) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// FuncCFG returns the cached control-flow graph for a function body.
func (p *Pass) FuncCFG(body *ast.BlockStmt) *CFG { return p.Prog.FuncCFG(body) }

// DeclInScope applies the analyzer's test-file filters to a declaration —
// the call-graph analyzers iterate graph nodes rather than Files() and
// must honor the same SkipTests/TestsOnly contract.
func (p *Pass) DeclInScope(decl ast.Node) bool {
	test := strings.HasSuffix(p.Fset.Position(decl.Pos()).Filename, "_test.go")
	if test && p.Analyzer.SkipTests {
		return false
	}
	if !test && p.Analyzer.TestsOnly {
		return false
	}
	return true
}

// Reportf records one finding unless a //lint:ignore directive suppresses
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.Pkg.suppressed(p.Analyzer.Name, position) {
		return
	}
	sev := p.Analyzer.Severity
	if sev == "" {
		sev = SeverityError
	}
	p.findings = append(p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Severity: sev,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// PkgNameOf resolves an identifier used as a package qualifier (the "time"
// in time.Now) to its imported package path, or "".
func (p *Pass) PkgNameOf(e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// Analyzers returns the full hermes-vet suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		NarrowingAnalyzer,
		LockcheckAnalyzer,
		WrapcheckAnalyzer,
		TestGoroutineAnalyzer,
		AllocscanAnalyzer,
		SnapshotSafetyAnalyzer,
		HotPathAllocAnalyzer,
		WallTimeAnalyzer,
		ChanBlockAnalyzer,
		LintDirectiveAnalyzer,
	}
}

// appliesTo reports whether the analyzer runs on the package at all.
func (a *Analyzer) appliesTo(pkg *Package) bool {
	if a.SkipMain && pkg.Name == "main" {
		return false
	}
	if len(a.Paths) == 0 {
		return true
	}
	path := strings.TrimSuffix(pkg.Path, "_test")
	for _, suffix := range a.Paths {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	return false
}

// Run applies every analyzer to every package — (analyzer, package) pairs
// execute concurrently against the shared Program — and returns the
// stably sorted, cross-analyzer-deduped findings.
func Run(analyzers []*Analyzer, pkgs []*Package, fset *token.FileSet) []Finding {
	prog := &Program{
		Fset:          fset,
		Pkgs:          pkgs,
		analyzerNames: make(map[string]bool, len(analyzers)),
		cfgs:          make(map[*ast.BlockStmt]*CFG),
		cache:         make(map[string]*cacheEntry),
	}
	for _, a := range analyzers {
		prog.analyzerNames[a.Name] = true
	}

	var (
		mu       sync.Mutex
		findings []Finding
		wg       sync.WaitGroup
	)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !a.appliesTo(pkg) {
				continue
			}
			wg.Add(1)
			go func(a *Analyzer, pkg *Package) {
				defer wg.Done()
				pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg, Prog: prog}
				a.Run(pass)
				mu.Lock()
				findings = append(findings, pass.findings...)
				mu.Unlock()
			}(a, pkg)
		}
	}
	wg.Wait()

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return dedup(analyzers, findings)
}

// dedup collapses findings from one DedupGroup landing on the same
// position: the interprocedural upgrades (hotpathalloc, walltime) see
// everything their intraprocedural siblings see, and without this every
// direct violation would be reported twice. Input must be sorted; the
// first finding (lowest analyzer name) at a position wins.
func dedup(analyzers []*Analyzer, findings []Finding) []Finding {
	group := make(map[string]string, len(analyzers))
	for _, a := range analyzers {
		if a.DedupGroup != "" {
			group[a.Name] = a.DedupGroup
		}
	}
	out := findings[:0]
	var curFile string
	var curLine, curCol int
	seen := map[string]bool{}
	for _, f := range findings {
		if f.File != curFile || f.Line != curLine || f.Col != curCol {
			curFile, curLine, curCol = f.File, f.Line, f.Col
			seen = map[string]bool{}
		}
		if g := group[f.Analyzer]; g != "" {
			if seen[g] {
				continue
			}
			seen[g] = true
		}
		out = append(out, f)
	}
	return out
}

// WriteText renders findings one per line for terminals and CI logs.
func WriteText(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintln(w, f)
	}
}

// WriteJSON renders findings as a JSON array for tooling. The array is
// stable-sorted by position (Run's output order), so CI diffs are
// deterministic run to run.
func WriteJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// ignoreDirective is one parsed "//lint:ignore <analyzer> <reason>"
// comment. It suppresses findings of the named analyzer (or every
// analyzer, for "all") on its own line and on the following line, so both
// trailing comments and comments-above work.
type ignoreDirective struct {
	analyzer string
	line     int
}

const ignorePrefix = "lint:ignore"

func parseIgnores(fset *token.FileSet, files []*ast.File) map[string][]ignoreDirective {
	out := make(map[string][]ignoreDirective)
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					out[pos.Filename] = append(out[pos.Filename],
						ignoreDirective{analyzer: name, line: pos.Line})
				}
			}
		}
	}
	return out
}

func (p *Package) suppressed(analyzer string, pos token.Position) bool {
	if analyzer == "lintdirective" {
		// A directive cannot vouch for itself: bare or mistargeted ignores
		// stay visible even under //lint:ignore all.
		return false
	}
	for _, d := range p.ignores[pos.Filename] {
		if d.analyzer != analyzer && d.analyzer != "all" {
			continue
		}
		if d.line == pos.Line || d.line == pos.Line-1 {
			return true
		}
	}
	return false
}
