// Package lint implements hermes-lint: project-specific static analysis
// enforcing invariants the Go compiler cannot see but Hermes's guarantees
// depend on — deterministic simulation, wire-codec bounds safety, lock
// discipline around shared switch state, error-chain preservation, and
// test-goroutine hygiene (DESIGN.md §8).
//
// The package is stdlib-only (go/parser, go/ast, go/types and the source
// importer); it loads packages straight from the tree so it works offline
// with zero module downloads, exactly like the rest of the module.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// Finding is one analyzer hit, addressable as file:line:col.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// Analyzer is one independently testable check.
type Analyzer struct {
	Name string
	Doc  string

	// Paths restricts the analyzer to packages whose import path (with
	// any external-test "_test" suffix stripped) ends in one of these
	// suffixes. Empty means every package.
	Paths []string
	// SkipTests excludes _test.go files; TestsOnly includes nothing else.
	SkipTests bool
	TestsOnly bool
	// SkipMain excludes package main (commands and examples are not
	// library code).
	SkipMain bool

	Run func(*Pass)
}

// Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	findings *[]Finding
}

// Files returns the package files this analyzer should inspect, honoring
// the analyzer's test-file filters.
func (p *Pass) Files() []*ast.File {
	var out []*ast.File
	for _, f := range p.Pkg.Files {
		test := strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
		if (test && p.Analyzer.SkipTests) || (!test && p.Analyzer.TestsOnly) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Reportf records one finding unless a //lint:ignore directive suppresses
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.Pkg.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// PkgNameOf resolves an identifier used as a package qualifier (the "time"
// in time.Now) to its imported package path, or "".
func (p *Pass) PkgNameOf(e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// Analyzers returns the full hermes-lint suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		NarrowingAnalyzer,
		LockcheckAnalyzer,
		WrapcheckAnalyzer,
		TestGoroutineAnalyzer,
		AllocscanAnalyzer,
	}
}

// appliesTo reports whether the analyzer runs on the package at all.
func (a *Analyzer) appliesTo(pkg *Package) bool {
	if a.SkipMain && pkg.Name == "main" {
		return false
	}
	if len(a.Paths) == 0 {
		return true
	}
	path := strings.TrimSuffix(pkg.Path, "_test")
	for _, suffix := range a.Paths {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	return false
}

// Run applies every analyzer to every package and returns the sorted
// findings.
func Run(analyzers []*Analyzer, pkgs []*Package, fset *token.FileSet) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !a.appliesTo(pkg) {
				continue
			}
			a.Run(&Pass{Analyzer: a, Fset: fset, Pkg: pkg, findings: &findings})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// WriteText renders findings one per line for terminals and CI logs.
func WriteText(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintln(w, f)
	}
}

// WriteJSON renders findings as a JSON array for tooling.
func WriteJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// ignoreDirective is one parsed "//lint:ignore <analyzer> <reason>"
// comment. It suppresses findings of the named analyzer (or every
// analyzer, for "all") on its own line and on the following line, so both
// trailing comments and comments-above work.
type ignoreDirective struct {
	analyzer string
	line     int
}

const ignorePrefix = "lint:ignore"

func parseIgnores(fset *token.FileSet, files []*ast.File) map[string][]ignoreDirective {
	out := make(map[string][]ignoreDirective)
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					out[pos.Filename] = append(out[pos.Filename],
						ignoreDirective{analyzer: name, line: pos.Line})
				}
			}
		}
	}
	return out
}

func (p *Package) suppressed(analyzer string, pos token.Position) bool {
	for _, d := range p.ignores[pos.Filename] {
		if d.analyzer != analyzer && d.analyzer != "all" {
			continue
		}
		if d.line == pos.Line || d.line == pos.Line-1 {
			return true
		}
	}
	return false
}
