package lint

import (
	"go/ast"
)

// This file is the forward-dataflow half of the hermes-vet engine: a
// worklist solver over the CFGs of cfg.go, generic in the fact type. Facts
// are sets; an analysis chooses the meet (union for may-analyses like
// taint reach, intersection for must-analyses like lock-held) and a
// per-node transfer function, which is the statement-granular form of the
// classic gen/kill formulation — GenKillTransfer adapts a pure gen/kill
// pair when the analysis has no need for anything fancier.

// Set is a fact set over any comparable element.
type Set[E comparable] map[E]struct{}

// NewSet builds a set from its elements.
func NewSet[E comparable](elems ...E) Set[E] {
	s := make(Set[E], len(elems))
	for _, e := range elems {
		s[e] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s Set[E]) Has(e E) bool { _, ok := s[e]; return ok }

// Add inserts an element.
func (s Set[E]) Add(e E) { s[e] = struct{}{} }

// Del removes an element.
func (s Set[E]) Del(e E) { delete(s, e) }

// Clone copies the set; a nil receiver (the lattice top) clones to nil.
func (s Set[E]) Clone() Set[E] {
	if s == nil {
		return nil
	}
	out := make(Set[E], len(s))
	for e := range s {
		out[e] = struct{}{}
	}
	return out
}

// Equal reports element-wise equality; nil (top) only equals nil.
func (s Set[E]) Equal(o Set[E]) bool {
	if (s == nil) != (o == nil) || len(s) != len(o) {
		return false
	}
	for e := range s {
		if _, ok := o[e]; !ok {
			return false
		}
	}
	return true
}

// Meet is the lattice join rule applied where control-flow edges merge.
type Meet int

const (
	// MeetUnion: a fact holds after the merge if it held on any incoming
	// edge (may-analysis; e.g. "this value may be a published snapshot").
	MeetUnion Meet = iota
	// MeetIntersect: a fact holds only if it held on every incoming edge
	// (must-analysis; e.g. "this mutex is definitely held").
	MeetIntersect
)

func meetSets[E comparable](m Meet, a, b Set[E]) Set[E] {
	// nil is the "unvisited" top element: it is the identity for both
	// meets, because an unexplored path constrains nothing yet.
	if a == nil {
		return b.Clone()
	}
	if b == nil {
		return a
	}
	switch m {
	case MeetUnion:
		for e := range b {
			a.Add(e)
		}
	case MeetIntersect:
		for e := range a {
			if !b.Has(e) {
				a.Del(e)
			}
		}
	}
	return a
}

// Transfer mutates (and returns) the in-set for one CFG node. The solver
// hands each transfer its own copy, so implementations may mutate freely.
type Transfer[E comparable] func(n ast.Node, in Set[E]) Set[E]

// GenKillTransfer lifts a pure gen/kill description into a Transfer: kills
// apply before gens, the textbook convention.
func GenKillTransfer[E comparable](f func(n ast.Node) (gen, kill []E)) Transfer[E] {
	return func(n ast.Node, in Set[E]) Set[E] {
		gen, kill := f(n)
		for _, e := range kill {
			in.Del(e)
		}
		for _, e := range gen {
			in.Add(e)
		}
		return in
	}
}

// FlowResult carries the fixed point: the fact set at entry and exit of
// every block, plus the iteration count (exported so the framework tests
// can assert convergence behaviour on loops).
type FlowResult[E comparable] struct {
	In         map[*Block]Set[E]
	Out        map[*Block]Set[E]
	Iterations int
}

// StateAt replays the block's transfers from its in-state and returns the
// fact set in force immediately *before* the given node. The node must be
// one of the block's Nodes.
func (r *FlowResult[E]) StateAt(transfer Transfer[E], b *Block, target ast.Node) Set[E] {
	state := r.In[b].Clone()
	if state == nil {
		state = NewSet[E]()
	}
	for _, n := range b.Nodes {
		if n == target {
			return state
		}
		state = transfer(n, state)
	}
	return state
}

// Forward solves a forward dataflow problem to its fixed point with a
// worklist. boundary is the fact set at function entry. Unreachable blocks
// keep nil (top) in/out sets.
func Forward[E comparable](cfg *CFG, m Meet, boundary Set[E], transfer Transfer[E]) *FlowResult[E] {
	res := &FlowResult[E]{
		In:  make(map[*Block]Set[E], len(cfg.Blocks)),
		Out: make(map[*Block]Set[E], len(cfg.Blocks)),
	}
	res.In[cfg.Entry] = boundary.Clone()
	if res.In[cfg.Entry] == nil {
		res.In[cfg.Entry] = NewSet[E]()
	}

	inQueue := make(map[*Block]bool, len(cfg.Blocks))
	queue := []*Block{cfg.Entry}
	inQueue[cfg.Entry] = true

	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		inQueue[b] = false
		res.Iterations++

		in := res.In[b]
		if b != cfg.Entry {
			in = nil
			for _, p := range b.Preds {
				in = meetSets(m, in, res.Out[p])
			}
			res.In[b] = in
		}
		if in == nil {
			// Still unreached; revisit when a predecessor produces facts.
			continue
		}
		out := in.Clone()
		for _, n := range b.Nodes {
			out = transfer(n, out)
		}
		if out.Equal(res.Out[b]) {
			continue
		}
		res.Out[b] = out
		for _, s := range b.Succs {
			if !inQueue[s] {
				inQueue[s] = true
				queue = append(queue, s)
			}
		}
	}
	return res
}
