// Package baseline implements the systems Hermes is compared against in §8:
//
//   - Direct: an unmodified switch — flow-mods hit the monolithic TCAM in
//     arrival order (the "Pica8 P-3290 / Dell 8132F / HP 5406zl" lines of
//     the figures);
//   - ZeroLatency: an idealized switch with free control-plane actions
//     (the reference lines of Fig. 1);
//   - ESPRES [Perešíni et al., HotSDN'14]: transparently reorders each
//     pending batch of updates to minimize TCAM entry moves;
//   - Tango [Lazaris et al., CoNEXT'14]: ESPRES-style reordering plus rule
//     rewriting — it aggregates same-action sibling prefixes, exploiting
//     the structure of data-center IP allocation, before installing.
//
// All baselines speak the same Installer interface as the Hermes-backed
// installer so the simulator and benchmark harness can swap them freely.
// Unlike Hermes they are best-effort: they reduce installation latency but
// provide no guarantee (§2.4) — which is precisely what the experiments
// demonstrate.
package baseline

import (
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/tcam"
)

// InstallResult reports one rule installation.
type InstallResult struct {
	ID classifier.RuleID
	// Latency is the hardware service time; Completed includes queueing
	// behind earlier control-plane work.
	Latency   time.Duration
	Completed time.Duration
	// Err is non-nil when the TCAM rejected the rule (table full).
	Err error
}

// Installer abstracts how rule insertions reach a switch.
type Installer interface {
	// Name identifies the strategy in reports.
	Name() string
	// InsertBatch installs a batch of rules that became ready at now,
	// returning one result per rule in the order actually installed.
	InsertBatch(now time.Duration, rules []classifier.Rule) []InstallResult
	// Delete removes a rule.
	Delete(now time.Duration, id classifier.RuleID) InstallResult
	// Tick gives periodic strategies (Hermes's Rule Manager) CPU time.
	Tick(now time.Duration)
	// Prefill loads background rules at configuration time without
	// charging control-plane time — the steady-state table contents a
	// production switch carries before the experiment begins (Table 1's
	// occupancy dimension).
	Prefill(rules []classifier.Rule)
}

// --- Direct ---------------------------------------------------------------

// Direct installs rules in arrival order into a monolithic table.
type Direct struct {
	sw *tcam.Switch
}

// NewDirect wraps an un-carved switch.
func NewDirect(sw *tcam.Switch) *Direct { return &Direct{sw: sw} }

// Name implements Installer.
func (d *Direct) Name() string { return d.sw.Profile().Name }

// InsertBatch implements Installer.
func (d *Direct) InsertBatch(now time.Duration, rules []classifier.Rule) []InstallResult {
	out := make([]InstallResult, 0, len(rules))
	for _, r := range rules {
		out = append(out, insertOne(d.sw, d.sw.Table(), now, r))
	}
	return out
}

// Delete implements Installer.
func (d *Direct) Delete(now time.Duration, id classifier.RuleID) InstallResult {
	return deleteOne(d.sw, d.sw.Table(), now, id)
}

// Tick implements Installer.
func (d *Direct) Tick(time.Duration) {}

// Prefill implements Installer.
func (d *Direct) Prefill(rules []classifier.Rule) { prefillTable(d.sw, d.sw.Table(), rules) }

// --- ZeroLatency ------------------------------------------------------------

// ZeroLatency models a switch whose control-plane actions are free — the
// no-control-latency reference configuration of Fig. 1.
type ZeroLatency struct {
	table *tcam.Table
}

// NewZeroLatency returns the idealized installer; it still maintains a rule
// table so lookups work, but charges no time.
func NewZeroLatency(profile *tcam.Profile) *ZeroLatency {
	return &ZeroLatency{table: tcam.NewTable("ideal", profile.Capacity, profile)}
}

// Name implements Installer.
func (z *ZeroLatency) Name() string { return "ZeroLatency" }

// InsertBatch implements Installer.
func (z *ZeroLatency) InsertBatch(now time.Duration, rules []classifier.Rule) []InstallResult {
	out := make([]InstallResult, 0, len(rules))
	for _, r := range rules {
		_, err := z.table.Insert(r)
		out = append(out, InstallResult{ID: r.ID, Completed: now, Err: err})
	}
	return out
}

// Delete implements Installer.
func (z *ZeroLatency) Delete(now time.Duration, id classifier.RuleID) InstallResult {
	z.table.Delete(id)
	return InstallResult{ID: id, Completed: now}
}

// Tick implements Installer.
func (z *ZeroLatency) Tick(time.Duration) {}

// Prefill implements Installer.
func (z *ZeroLatency) Prefill(rules []classifier.Rule) {
	for _, r := range rules {
		z.table.Insert(r) //nolint:errcheck // best effort
	}
}

// --- ESPRES -----------------------------------------------------------------

// ESPRES reorders each pending batch before installation: updates are
// scheduled so that each insertion lands as low in the TCAM as possible,
// minimizing entry moves. With our shift model (an insertion moves every
// entry below it) the move-minimizing order is descending priority: each
// subsequent rule places below its batch predecessors.
type ESPRES struct {
	sw *tcam.Switch
}

// NewESPRES wraps an un-carved switch.
func NewESPRES(sw *tcam.Switch) *ESPRES { return &ESPRES{sw: sw} }

// Name implements Installer.
func (e *ESPRES) Name() string { return "ESPRES" }

// InsertBatch implements Installer.
func (e *ESPRES) InsertBatch(now time.Duration, rules []classifier.Rule) []InstallResult {
	ordered := append([]classifier.Rule(nil), rules...)
	sortDescendingPriority(ordered)
	out := make([]InstallResult, 0, len(ordered))
	for _, r := range ordered {
		out = append(out, insertOne(e.sw, e.sw.Table(), now, r))
	}
	return out
}

// Delete implements Installer.
func (e *ESPRES) Delete(now time.Duration, id classifier.RuleID) InstallResult {
	return deleteOne(e.sw, e.sw.Table(), now, id)
}

// Tick implements Installer.
func (e *ESPRES) Tick(time.Duration) {}

// Prefill implements Installer.
func (e *ESPRES) Prefill(rules []classifier.Rule) { prefillTable(e.sw, e.sw.Table(), rules) }

// --- Tango -------------------------------------------------------------------

// Tango layers rule rewriting on top of ESPRES reordering: same-priority,
// same-action rules in a batch are aggregated (sibling prefixes merge,
// covered prefixes drop) before installation, shrinking both the batch and
// the eventual table occupancy. This mirrors Tango's exploitation of IP
// allocation structure; its advantage over ESPRES grows on structured
// (data-center) prefixes and shrinks on ISP prefixes — the Fig. 10/11
// contrast.
type Tango struct {
	sw *tcam.Switch
}

// NewTango wraps an un-carved switch.
func NewTango(sw *tcam.Switch) *Tango { return &Tango{sw: sw} }

// Name implements Installer.
func (t *Tango) Name() string { return "Tango" }

// InsertBatch implements Installer.
func (t *Tango) InsertBatch(now time.Duration, rules []classifier.Rule) []InstallResult {
	merged := AggregateRules(rules)
	sortDescendingPriority(merged)
	out := make([]InstallResult, 0, len(merged))
	for _, r := range merged {
		out = append(out, insertOne(t.sw, t.sw.Table(), now, r))
	}
	return out
}

// Delete implements Installer.
func (t *Tango) Delete(now time.Duration, id classifier.RuleID) InstallResult {
	return deleteOne(t.sw, t.sw.Table(), now, id)
}

// Tick implements Installer.
func (t *Tango) Tick(time.Duration) {}

// Prefill implements Installer.
func (t *Tango) Prefill(rules []classifier.Rule) { prefillTable(t.sw, t.sw.Table(), rules) }

// AggregateRules merges a batch: rules sharing (priority, action) have
// their match regions minimized via sibling merging and containment
// elimination. Surviving regions keep the ID of the first contributing
// rule; fully merged-away rules are absorbed (their result is reported by
// the survivor).
func AggregateRules(rules []classifier.Rule) []classifier.Rule {
	type key struct {
		prio   int32
		action classifier.Action
	}
	groups := make(map[key][]classifier.Rule)
	var order []key
	for _, r := range rules {
		k := key{r.Priority, r.Action}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	var out []classifier.Rule
	for _, k := range order {
		group := groups[k]
		matches := make([]classifier.Match, len(group))
		for i, r := range group {
			matches[i] = r.Match
		}
		merged := classifier.MergeMatches(matches)
		if len(merged) >= len(group) {
			out = append(out, group...)
			continue
		}
		for i, m := range merged {
			out = append(out, classifier.Rule{
				ID:       group[i].ID, // reuse IDs from the group
				Match:    m,
				Priority: k.prio,
				Action:   k.action,
			})
		}
	}
	return out
}

func sortDescendingPriority(rules []classifier.Rule) {
	for i := 1; i < len(rules); i++ {
		for j := i; j > 0 && rules[j].Priority > rules[j-1].Priority; j-- {
			rules[j], rules[j-1] = rules[j-1], rules[j]
		}
	}
}

// --- Hermes adapter -----------------------------------------------------------

// Hermes adapts a core.Agent to the Installer interface.
type Hermes struct {
	agent *core.Agent
}

// NewHermes wraps a configured Hermes agent.
func NewHermes(agent *core.Agent) *Hermes { return &Hermes{agent: agent} }

// Name implements Installer.
func (h *Hermes) Name() string { return "Hermes" }

// Agent exposes the wrapped agent for metric collection.
func (h *Hermes) Agent() *core.Agent { return h.agent }

// InsertBatch implements Installer.
func (h *Hermes) InsertBatch(now time.Duration, rules []classifier.Rule) []InstallResult {
	out := make([]InstallResult, 0, len(rules))
	for _, r := range rules {
		res, err := h.agent.Insert(now, r)
		out = append(out, InstallResult{ID: r.ID, Latency: res.Latency, Completed: res.Completed, Err: err})
	}
	return out
}

// Delete implements Installer.
func (h *Hermes) Delete(now time.Duration, id classifier.RuleID) InstallResult {
	res, err := h.agent.Delete(now, id)
	return InstallResult{ID: id, Latency: res.Latency, Completed: res.Completed, Err: err}
}

// Tick implements Installer.
func (h *Hermes) Tick(now time.Duration) { h.agent.Tick(now) }

// Prefill implements Installer.
func (h *Hermes) Prefill(rules []classifier.Rule) {
	for _, r := range rules {
		h.agent.Insert(0, r) //nolint:errcheck // best effort
	}
	if end := h.agent.ForceMigration(0); end != 0 {
		h.agent.Advance(end)
	}
	h.agent.Switch().ResetClock()
}

// --- shared helpers -------------------------------------------------------------

func insertOne(sw *tcam.Switch, tbl *tcam.Table, now time.Duration, r classifier.Rule) InstallResult {
	cost, err := tbl.Insert(r)
	if err != nil {
		return InstallResult{ID: r.ID, Err: err, Completed: now}
	}
	return InstallResult{ID: r.ID, Latency: cost, Completed: sw.Submit(now, cost)}
}

func deleteOne(sw *tcam.Switch, tbl *tcam.Table, now time.Duration, id classifier.RuleID) InstallResult {
	cost, ok := tbl.Delete(id)
	if !ok {
		return InstallResult{ID: id, Completed: now}
	}
	return InstallResult{ID: id, Latency: cost, Completed: sw.Submit(now, cost)}
}

// prefillTable loads rules into a raw table and clears the control-plane
// clock so the experiment starts with a loaded but idle switch.
func prefillTable(sw *tcam.Switch, tbl *tcam.Table, rules []classifier.Rule) {
	for _, r := range rules {
		tbl.Insert(r) //nolint:errcheck // best effort; capacity permitting
	}
	sw.ResetClock()
}
