package baseline

import (
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/tcam"
)

func TestShadowSwitchConstantInsert(t *testing.T) {
	ss := NewShadowSwitch(tcam.NewSwitch("ss", tcam.Dell8132F))
	ss.Prefill(background(500)) // a loaded TCAM would make direct inserts slow
	res := ss.InsertBatch(0, batch(10, 20, 30))
	for _, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Latency != ss.SoftInsertLatency {
			t.Errorf("latency = %v, want constant %v", r.Latency, ss.SoftInsertLatency)
		}
	}
	if ss.SoftOccupancy() != 3 || ss.SoftPeak() != 3 {
		t.Errorf("soft occupancy = %d peak = %d", ss.SoftOccupancy(), ss.SoftPeak())
	}
	if ss.Name() != "ShadowSwitch" {
		t.Error("name")
	}
}

func TestShadowSwitchMoverDrainsToTCAM(t *testing.T) {
	sw := tcam.NewSwitch("ss", tcam.Pica8P3290)
	ss := NewShadowSwitch(sw)
	ss.InsertBatch(0, batch(1, 2, 3, 4, 5))
	before := ss.SoftOccupancy()
	// Give the mover time: each move costs a hardware insert.
	for tick := time.Duration(0); tick < time.Second; tick += 10 * time.Millisecond {
		ss.Tick(tick)
	}
	if ss.SoftOccupancy() != 0 {
		t.Errorf("software table not drained: %d left (was %d)", ss.SoftOccupancy(), before)
	}
	if ss.Moved() != 5 {
		t.Errorf("moved = %d", ss.Moved())
	}
	// Rules answer lookups from the TCAM now.
	for i := 1; i <= 5; i++ {
		addr := uint32(i-1)<<16 | 0x0A000000
		if _, ok := ss.Lookup(addr, 0); !ok {
			t.Errorf("rule %d unreachable after move", i)
		}
	}
}

func TestShadowSwitchSoftResidencyAccrues(t *testing.T) {
	ss := NewShadowSwitch(tcam.NewSwitch("ss", tcam.Pica8P3290))
	ss.InsertBatch(0, batch(1, 2))
	// Two rules resident for 1 second before any tick: 2 rule-seconds.
	got := ss.SoftRuleSeconds(time.Second)
	if got < 1.9 || got > 2.1 {
		t.Errorf("soft rule-seconds = %v, want ≈2", got)
	}
}

func TestShadowSwitchLookupPrefersSoftware(t *testing.T) {
	ss := NewShadowSwitch(tcam.NewSwitch("ss", tcam.Pica8P3290))
	// Same match in TCAM (old action) and software (new action): the
	// software entry is newer state and must win.
	old := rule(1, "10.0.0.0/8", 5)
	ss.Prefill([]classifier.Rule{old})
	updated := rule(2, "10.0.0.0/8", 5)
	updated.Action = classifier.Action{Type: classifier.ActionDrop}
	ss.InsertBatch(0, []classifier.Rule{updated})
	got, ok := ss.Lookup(classifier.MustParsePrefix("10.1.1.1/32").Addr, 0)
	if !ok || got.Action.Type != classifier.ActionDrop {
		t.Errorf("lookup = %v, %v; software entry must win", got, ok)
	}
}

func TestShadowSwitchDelete(t *testing.T) {
	ss := NewShadowSwitch(tcam.NewSwitch("ss", tcam.Pica8P3290))
	ss.InsertBatch(0, batch(1, 2))
	// Software delete is instant.
	res := ss.Delete(time.Millisecond, 1)
	if res.Err != nil || res.Latency != 0 {
		t.Errorf("software delete = %+v", res)
	}
	// Drain, then delete from TCAM at hardware cost.
	for tick := time.Duration(0); tick < 100*time.Millisecond; tick += 10 * time.Millisecond {
		ss.Tick(tick)
	}
	res = ss.Delete(200*time.Millisecond, 2)
	if res.Err != nil || res.Latency != tcam.Pica8P3290.DeleteLatency {
		t.Errorf("tcam delete = %+v", res)
	}
}

// TestShadowSwitchVsHermesTradeoff encodes §9's design-space contrast:
// ShadowSwitch wins on raw insert latency (software is nearly free) but
// pays data-plane exposure that Hermes's hardware shadow never incurs.
func TestShadowSwitchVsHermesTradeoff(t *testing.T) {
	ss := NewShadowSwitch(tcam.NewSwitch("ss", tcam.Dell8132F))
	ss.Prefill(background(400))
	now := time.Duration(0)
	for i := 0; i < 200; i++ {
		r := rule(classifier.RuleID(i+1), "10.0.0.0/8", int32(i%40+1))
		r.Match = classifier.DstMatch(classifier.NewPrefix(uint32(i)<<12|0x0A000000, 28))
		ss.InsertBatch(now, []classifier.Rule{r})
		now += time.Millisecond
		ss.Tick(now)
	}
	if got := ss.SoftRuleSeconds(now); got <= 0 {
		t.Errorf("software exposure = %v, want > 0 (the cost Hermes avoids)", got)
	}
	if ss.Moved() == 0 {
		t.Error("mover never ran")
	}
}
