package baseline

import (
	"time"

	"hermes/internal/classifier"
	"hermes/internal/tcam"
)

// ShadowSwitch models the paper's closest related work [Bifulco & Matsiuk,
// SIGCOMM CCR 2015]: instead of carving a *hardware* shadow slice, new
// rules are absorbed into a *software* flow table on the switch CPU —
// insertion is nearly free — and a background mover migrates them into the
// TCAM one by one.
//
// The trade-off Hermes's §9 highlights: while a rule lives in the software
// table, its traffic is forwarded by the switch CPU at a fraction of line
// rate. ShadowSwitch therefore buys control-plane latency with data-plane
// capacity, where Hermes's hardware shadow keeps the data plane untouched.
// The Installer exposes SoftRuleSeconds so experiments can quantify that
// exposure.
type ShadowSwitch struct {
	sw   *tcam.Switch
	tcam *tcam.Table
	// soft is the software flow table: insertion order preserved; lookups
	// hit it before the TCAM (newest state wins).
	soft []classifier.Rule
	// SoftInsertLatency is the CPU-table insertion cost (default 20µs).
	SoftInsertLatency time.Duration

	lastTick         time.Duration
	softRuleSeconds  float64
	softPeak         int
	movedToTCAM      int
	softwareInserted int
}

// NewShadowSwitch wraps an un-carved switch.
func NewShadowSwitch(sw *tcam.Switch) *ShadowSwitch {
	return &ShadowSwitch{
		sw:                sw,
		tcam:              sw.Table(),
		SoftInsertLatency: 20 * time.Microsecond,
	}
}

// Name implements Installer.
func (s *ShadowSwitch) Name() string { return "ShadowSwitch" }

// InsertBatch implements Installer: every rule lands in the software table
// at constant cost.
func (s *ShadowSwitch) InsertBatch(now time.Duration, rules []classifier.Rule) []InstallResult {
	s.accrue(now)
	out := make([]InstallResult, 0, len(rules))
	for _, r := range rules {
		s.soft = append(s.soft, r)
		s.softwareInserted++
		// Software-table writes are CPU memory operations: they never
		// contend with the TCAM update engine the mover occupies.
		out = append(out, InstallResult{ID: r.ID, Latency: s.SoftInsertLatency, Completed: now + s.SoftInsertLatency})
	}
	if len(s.soft) > s.softPeak {
		s.softPeak = len(s.soft)
	}
	return out
}

// Delete implements Installer: software entries delete instantly; TCAM
// entries at hardware cost.
func (s *ShadowSwitch) Delete(now time.Duration, id classifier.RuleID) InstallResult {
	s.accrue(now)
	for i, r := range s.soft {
		if r.ID == id {
			s.soft = append(s.soft[:i], s.soft[i+1:]...)
			return InstallResult{ID: id, Completed: now}
		}
	}
	return deleteOne(s.sw, s.tcam, now, id)
}

// Tick implements Installer: the background mover drains the software
// table into the TCAM, paying full hardware insertion cost per entry on
// the switch's control processor.
func (s *ShadowSwitch) Tick(now time.Duration) {
	s.accrue(now)
	// Move entries while the control processor has caught up to now: the
	// mover is background work and must not run ahead of wall-clock.
	for len(s.soft) > 0 && s.sw.BusyUntil() <= now {
		r := s.soft[0]
		cost, err := s.tcam.Insert(r)
		if err != nil {
			break // TCAM full: entries stay in software
		}
		s.sw.Submit(now, cost)
		s.soft = s.soft[1:]
		s.movedToTCAM++
	}
}

// Prefill implements Installer.
func (s *ShadowSwitch) Prefill(rules []classifier.Rule) { prefillTable(s.sw, s.tcam, rules) }

// accrue charges software-table residency (rule·seconds) up to now.
func (s *ShadowSwitch) accrue(now time.Duration) {
	if now > s.lastTick {
		s.softRuleSeconds += float64(len(s.soft)) * (now - s.lastTick).Seconds()
		s.lastTick = now
	}
}

// SoftRuleSeconds reports the accumulated software-forwarding exposure:
// rule·seconds during which traffic depended on CPU forwarding.
func (s *ShadowSwitch) SoftRuleSeconds(now time.Duration) float64 {
	s.accrue(now)
	return s.softRuleSeconds
}

// SoftOccupancy reports the current software-table size.
func (s *ShadowSwitch) SoftOccupancy() int { return len(s.soft) }

// SoftPeak reports the largest software-table size observed.
func (s *ShadowSwitch) SoftPeak() int { return s.softPeak }

// Moved reports how many rules the background mover promoted to TCAM.
func (s *ShadowSwitch) Moved() int { return s.movedToTCAM }

// Lookup resolves a packet: the software table answers first (it holds the
// newest state), then the TCAM.
func (s *ShadowSwitch) Lookup(dst, src uint32) (classifier.Rule, bool) {
	var best classifier.Rule
	found := false
	for _, r := range s.soft {
		if !r.Match.MatchesPacket(dst, src) {
			continue
		}
		if !found || r.Priority > best.Priority {
			best, found = r, true
		}
	}
	if found {
		return best, true
	}
	return s.tcam.Lookup(dst, src)
}
