package baseline

import (
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/tcam"
)

func rule(id classifier.RuleID, dst string, prio int32) classifier.Rule {
	return classifier.Rule{
		ID:       id,
		Match:    classifier.DstMatch(classifier.MustParsePrefix(dst)),
		Priority: prio,
		Action:   classifier.Action{Type: classifier.ActionForward, Port: 1},
	}
}

func batch(prios ...int32) []classifier.Rule {
	out := make([]classifier.Rule, len(prios))
	for i, p := range prios {
		out[i] = rule(classifier.RuleID(i+1), "10.0.0.0/8", p)
		out[i].Match = classifier.DstMatch(classifier.NewPrefix(uint32(i)<<16|0x0A000000, 24))
	}
	return out
}

func totalLatency(results []InstallResult) time.Duration {
	var total time.Duration
	for _, r := range results {
		total += r.Latency
	}
	return total
}

func TestDirectInstallsInOrder(t *testing.T) {
	sw := tcam.NewSwitch("s", tcam.Pica8P3290)
	d := NewDirect(sw)
	res := d.InsertBatch(0, batch(1, 2, 3))
	if len(res) != 3 {
		t.Fatal("result count")
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("res %d err: %v", i, r.Err)
		}
		if r.ID != classifier.RuleID(i+1) {
			t.Errorf("arrival order not preserved: %v", res)
		}
	}
	if d.Name() != tcam.Pica8P3290.Name {
		t.Error("Direct must report the switch name")
	}
	// Deleting works and is cheap.
	del := d.Delete(time.Second, 1)
	if del.Latency != tcam.Pica8P3290.DeleteLatency {
		t.Errorf("delete latency = %v", del.Latency)
	}
	d.Tick(0) // no-op
}

func TestESPRESBeatsDirectOnAscendingBatch(t *testing.T) {
	// An ascending-priority batch is pathological for in-order insertion
	// (every rule shifts all of its predecessors); ESPRES reorders it.
	prios := make([]int32, 60)
	for i := range prios {
		prios[i] = int32(i)
	}
	swD := tcam.NewSwitch("d", tcam.Pica8P3290)
	swE := tcam.NewSwitch("e", tcam.Pica8P3290)
	direct := totalLatency(NewDirect(swD).InsertBatch(0, batch(prios...)))
	espres := totalLatency(NewESPRES(swE).InsertBatch(0, batch(prios...)))
	if espres >= direct {
		t.Errorf("ESPRES %v not faster than Direct %v on ascending batch", espres, direct)
	}
	// Both leave identical table contents (same rules).
	if swD.Table().Occupancy() != swE.Table().Occupancy() {
		t.Error("occupancy mismatch")
	}
}

func TestTangoAggregates(t *testing.T) {
	// Four sibling /26s with the same action collapse into one /24.
	rules := []classifier.Rule{
		rule(1, "192.168.1.0/26", 5),
		rule(2, "192.168.1.64/26", 5),
		rule(3, "192.168.1.128/26", 5),
		rule(4, "192.168.1.192/26", 5),
	}
	merged := AggregateRules(rules)
	if len(merged) != 1 {
		t.Fatalf("aggregated to %d rules, want 1", len(merged))
	}
	if merged[0].Match.Dst != classifier.MustParsePrefix("192.168.1.0/24") {
		t.Errorf("merged match = %v", merged[0].Match)
	}

	sw := tcam.NewSwitch("t", tcam.Pica8P3290)
	tg := NewTango(sw)
	res := tg.InsertBatch(0, rules)
	if len(res) != 1 {
		t.Fatalf("installed %d rules", len(res))
	}
	if sw.Table().Occupancy() != 1 {
		t.Error("table should hold the aggregate only")
	}
	// Lookups still cover the whole /24.
	if _, ok := sw.Lookup(classifier.MustParsePrefix("192.168.1.77/32").Addr, 0); !ok {
		t.Error("aggregate does not cover constituent")
	}
}

func TestTangoDoesNotAggregateAcrossActions(t *testing.T) {
	rules := []classifier.Rule{
		rule(1, "192.168.1.0/25", 5),
		rule(2, "192.168.1.128/25", 5),
	}
	rules[1].Action = classifier.Action{Type: classifier.ActionDrop}
	if merged := AggregateRules(rules); len(merged) != 2 {
		t.Errorf("different actions merged: %v", merged)
	}
	// Different priorities also stay separate.
	rules[1].Action = rules[0].Action
	rules[1].Priority = 9
	if merged := AggregateRules(rules); len(merged) != 2 {
		t.Errorf("different priorities merged: %v", merged)
	}
}

func TestTangoAtLeastAsGoodAsESPRES(t *testing.T) {
	// On a structured batch (sibling prefixes), Tango installs fewer rules
	// and therefore spends no more time than ESPRES.
	var rules []classifier.Rule
	id := classifier.RuleID(1)
	for i := 0; i < 16; i++ {
		base := uint32(0xC0A80000 | i<<8)
		rules = append(rules,
			classifier.Rule{ID: id, Match: classifier.DstMatch(classifier.NewPrefix(base, 25)), Priority: 7,
				Action: classifier.Action{Type: classifier.ActionForward, Port: 1}},
			classifier.Rule{ID: id + 1, Match: classifier.DstMatch(classifier.NewPrefix(base|128, 25)), Priority: 7,
				Action: classifier.Action{Type: classifier.ActionForward, Port: 1}},
		)
		id += 2
	}
	swE := tcam.NewSwitch("e", tcam.Dell8132F)
	swT := tcam.NewSwitch("t", tcam.Dell8132F)
	espres := totalLatency(NewESPRES(swE).InsertBatch(0, rules))
	tango := totalLatency(NewTango(swT).InsertBatch(0, rules))
	if tango > espres {
		t.Errorf("Tango %v slower than ESPRES %v on structured batch", tango, espres)
	}
	if swT.Table().Occupancy() >= swE.Table().Occupancy() {
		t.Error("Tango should shrink the table")
	}
}

func TestZeroLatency(t *testing.T) {
	z := NewZeroLatency(tcam.Pica8P3290)
	res := z.InsertBatch(time.Second, batch(3, 1, 2))
	for _, r := range res {
		if r.Latency != 0 || r.Completed != time.Second || r.Err != nil {
			t.Errorf("zero-latency result = %+v", r)
		}
	}
	if z.Delete(time.Second, 1).Latency != 0 {
		t.Error("zero-latency delete must be free")
	}
	if z.Name() != "ZeroLatency" {
		t.Error("name")
	}
	z.Tick(0)
}

func TestHermesInstaller(t *testing.T) {
	sw := tcam.NewSwitch("h", tcam.Pica8P3290)
	agent, err := core.New(sw, core.Config{Guarantee: 5 * time.Millisecond, DisableRateLimit: true})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHermes(agent)
	if h.Name() != "Hermes" || h.Agent() != agent {
		t.Error("identity")
	}
	res := h.InsertBatch(0, batch(5, 6, 7))
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("insert err: %v", r.Err)
		}
		if r.Completed > 5*time.Millisecond {
			t.Errorf("guaranteed insert took %v", r.Completed)
		}
	}
	h.Tick(10 * time.Millisecond)
	del := h.Delete(20*time.Millisecond, 1)
	if del.Err != nil {
		t.Errorf("delete err: %v", del.Err)
	}
}

func TestInstallerTableFull(t *testing.T) {
	prof := *tcam.Pica8P3290
	prof.Capacity = 2
	sw := tcam.NewSwitch("tiny", &prof)
	d := NewDirect(sw)
	res := d.InsertBatch(0, batch(1, 2, 3))
	if res[2].Err == nil {
		t.Error("overflow must surface an error")
	}
}
