package baseline

import (
	"testing"
	"time"

	"hermes/internal/classifier"
	"hermes/internal/core"
	"hermes/internal/tcam"
)

func background(n int) []classifier.Rule {
	out := make([]classifier.Rule, n)
	for i := range out {
		out[i] = classifier.Rule{
			ID:       classifier.RuleID(1000 + i),
			Match:    classifier.DstMatch(classifier.NewPrefix(0xAC100000|uint32(i)<<8, 24)),
			Priority: 1,
			Action:   classifier.Action{Type: classifier.ActionForward, Port: i},
		}
	}
	return out
}

func TestPrefillLoadsWithoutCharge(t *testing.T) {
	cases := []struct {
		name string
		mk   func() (Installer, func() int)
	}{
		{"direct", func() (Installer, func() int) {
			sw := tcam.NewSwitch("d", tcam.Pica8P3290)
			return NewDirect(sw), sw.Table().Occupancy
		}},
		{"espres", func() (Installer, func() int) {
			sw := tcam.NewSwitch("e", tcam.Pica8P3290)
			return NewESPRES(sw), sw.Table().Occupancy
		}},
		{"tango", func() (Installer, func() int) {
			sw := tcam.NewSwitch("t", tcam.Pica8P3290)
			return NewTango(sw), sw.Table().Occupancy
		}},
	}
	for _, c := range cases {
		inst, occ := c.mk()
		inst.Prefill(background(200))
		if got := occ(); got != 200 {
			t.Errorf("%s: occupancy = %d, want 200", c.name, got)
		}
		// The control-plane clock must be clean: the next insert at t=0
		// completes without queueing behind prefill work.
		res := inst.InsertBatch(0, []classifier.Rule{rule(1, "10.0.0.0/8", 50)})
		if res[0].Err != nil {
			t.Fatalf("%s: %v", c.name, res[0].Err)
		}
		if res[0].Completed != res[0].Latency {
			t.Errorf("%s: first insert queued behind prefill: completed %v, latency %v",
				c.name, res[0].Completed, res[0].Latency)
		}
		inst.Tick(time.Second) // no-ops, but must not panic
	}
}

func TestPrefillZeroLatency(t *testing.T) {
	z := NewZeroLatency(tcam.Pica8P3290)
	z.Prefill(background(50))
	res := z.InsertBatch(0, []classifier.Rule{rule(1, "10.0.0.0/8", 50)})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	// Rules must be resolvable (the table actually holds the prefill).
	if got := z.Delete(0, 1000); got.Err != nil {
		t.Errorf("prefilled rule not deletable: %v", got.Err)
	}
}

func TestPrefillHermesUsesMainTable(t *testing.T) {
	sw := tcam.NewSwitch("h", tcam.Pica8P3290)
	agent, err := core.New(sw, core.Config{Guarantee: 5 * time.Millisecond, DisableRateLimit: true})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHermes(agent)
	h.Prefill(background(200))
	if agent.ShadowOccupancy() != 0 {
		t.Errorf("prefill left %d rules in the shadow table", agent.ShadowOccupancy())
	}
	if agent.MainOccupancy() != 200 {
		t.Errorf("main occupancy = %d, want 200", agent.MainOccupancy())
	}
	// Guaranteed inserts still meet the bound with a loaded main table.
	res := h.InsertBatch(0, []classifier.Rule{rule(1, "10.0.0.0/8", 50)})
	if res[0].Err != nil || res[0].Completed > 5*time.Millisecond {
		t.Errorf("post-prefill insert = %+v", res[0])
	}
}
