GO ?= go

.PHONY: all build test check bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static analysis + full suite under the race detector.
check:
	./scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem .
