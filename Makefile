GO ?= go

.PHONY: all build test check lint fuzz bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Project-specific static analysis (DESIGN.md §8): determinism, narrowing,
# lockcheck, wrapcheck, testgoroutine.
lint:
	$(GO) run ./cmd/hermes-lint ./...

# Short-budget native fuzzing of the wire codec and the prefix parser.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzCodecRoundTrip -fuzztime=5s ./internal/ofwire
	$(GO) test -run='^$$' -fuzz=FuzzParsePrefix -fuzztime=5s ./internal/classifier

# Full gate: lint, vet, build, race tests, linter self-test, short fuzz.
check: lint
	./scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem .
