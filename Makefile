GO ?= go

.PHONY: all build test check lint lint-bench fuzz bench bench-json bench-batch bench-cache chaos loadgen-smoke loadgen-1m

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# hermes-vet (DESIGN.md §13): CFG/dataflow static analysis of the
# project's concurrency and hot-path invariants — determinism (intra- and
# interprocedural wall-clock reach), zero-alloc hot paths, lock
# discipline, snapshot immutability after atomic.Pointer publication,
# blocking channel ops under locks, wire narrowing, error wrapping,
# test-goroutine hygiene, and //lint:ignore hygiene.
lint:
	$(GO) run ./cmd/hermes-lint ./...

# Wall-time budget for the full-repo lint run. The engine loads and
# type-checks every package and solves interprocedural fixpoints, so this
# catches accidental quadratic blowups in the analyzers before they make
# `make lint` (and every CI run) crawl. Override: LINT_BUDGET=60 make lint-bench
LINT_BUDGET ?= 120
lint-bench:
	./scripts/lint_bench.sh $(LINT_BUDGET)

# Short-budget native fuzzing of the wire codec and the prefix parser.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzCodecRoundTrip -fuzztime=5s ./internal/ofwire
	$(GO) test -run='^$$' -fuzz=FuzzParsePrefix -fuzztime=5s ./internal/classifier

# Seeded chaos harness under the race detector: crash/restart
# reconciliation, interrupted-migration repair, wire faults, and request
# deadlines, all on fixed seeds so failures replay (DESIGN.md §9).
chaos:
	$(GO) test -race -count=1 \
		-run 'TestChaos|TestMigrationInterruptAtEachStep|TestCrashRestartReconcile|TestEquivalenceFixedSeedsWithFaults|TestUnmergeAfterCrashRecovery|TestWire|TestApplyDrivesAgentFaults|TestFleetReconnectResyncsRules|TestFleetBreakerHalfOpenClosesAfterInjectedFaults|TestFleetOpTimeoutFailsWedgedSwitch|TestRequestTimeoutAbandonsOnlyThatRequest|TestServerShutdownDrains|TestReconcile|TestDeclarativeReconcileOverFleet|TestControllerLeaseFailover' \
		./internal/core ./internal/faultinject ./internal/experiments ./internal/fleet ./internal/ofwire ./internal/intent
	$(GO) run ./cmd/hermes-bench -scale 0.5 chaos
	$(GO) run ./cmd/hermes-bench -scale 1 reconcile

# Full gate: lint, vet, build, race tests, linter self-test, short fuzz,
# seeded chaos.
check: lint
	./scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem .

# Lookup-path perf baseline: runs the table/agent lookup benches with
# -benchmem and rewrites BENCH_lookup.json and BENCH_obs.json (committed,
# so perf regressions — and obs-overhead regressions — show up in review
# diffs).
bench-json:
	./scripts/bench_json.sh

# Batched wire-path perf baseline: per-op vs vectored-frame ingest over TCP
# loopback (ingest_speedup floor: 10x committed), the agent-core batch
# insert (steady-state 0 allocs/op), and the sharded parallel lookup grid
# across GOMAXPROCS 1/2/4/8. Rewrites BENCH_batch.json (committed).
bench-batch:
	BATCH_ONLY=1 ./scripts/bench_json.sh

# FDRC caching-hierarchy baseline (DESIGN.md §16): the deterministic
# policy × Zipf-skew × cache-size sweep plus the wall-clock cached-vs-plain
# lookup overhead pair. Rewrites BENCH_cache.json (committed, so hit-ratio
# or overhead regressions show up in review diffs).
bench-cache:
	$(GO) run ./cmd/hermes-bench -cache-json BENCH_cache.json

# Open-loop SLO smoke: a deterministic 4k-flow schedule replayed against
# two in-process agents, verdict rewritten to BENCH_loadgen.json
# (committed baseline; exit 1 on SLO breach).
loadgen-smoke:
	$(GO) run ./cmd/hermes-loadgen -flows 4000 -rate 20000 -switches 2 \
		-hold 20ms -classes 3,1 -seed 42 -workers 16 \
		-p99-budget 30s -max-loss-rate 0 -out BENCH_loadgen.json

# Million-flow soak: the ISSUE acceptance run. Open-loop Poisson arrivals,
# 1M flows at 12k/s against four in-process agents — takes a couple of
# minutes of wall clock (the schedule spans ~83 s of virtual time plus
# drain). Same seed replays a byte-identical schedule.
loadgen-1m:
	$(GO) run ./cmd/hermes-loadgen -flows 1000000 -rate 12000 -switches 4 \
		-hold 20ms -workers 32 -queue-depth 65536 -classes 3,1 -seed 42 \
		-p99-budget 10s -max-loss-rate 0 -out BENCH_loadgen_1m.json
